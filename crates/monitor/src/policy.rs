//! The open control plane: pluggable per-bin shedding policies.
//!
//! Algorithm 1 of the paper is a *family* of control schemes — reactive
//! (Eq. 4.1), predictive with three fairness allocators (§5.2), and the
//! idealised variants the evaluation compares against. This module makes the
//! family open: a [`ControlPolicy`] sees everything the monitor knows about a
//! bin ([`ControlContext`]) and answers with the per-query sampling rates
//! plus an introspectable [`ControlDecision`] that flows into the
//! [`BinRecord`](crate::BinRecord) and the
//! [`RunObserver::on_decision`](crate::RunObserver::on_decision) hook.
//!
//! The built-in policies reproduce the paper's schemes — the
//! [`Strategy`](crate::Strategy) enum constructs them, so the enum path and
//! the trait path are bit-identical by construction. (One deliberate
//! behaviour change rode along: reactive configurations whose per-query
//! minimum sampling rates bind now honour them through the allocator
//! instead of silently violating them — see the DESIGN.md control-plane
//! notes; min-rate-free configurations are unchanged.) Two more built-ins
//! open the surface beyond the enum: [`OraclePolicy`] (allocates from the
//! bin's actual measured cycles, the upper bound on every predictor) and
//! [`HysteresisReactivePolicy`] (sheds immediately, recovers slowly).
//!
//! A custom policy is a struct:
//!
//! ```
//! use netshed_monitor::policy::{ControlContext, ControlDecision, ControlPolicy, DecisionReason};
//!
//! /// Sheds to a fixed rate whenever the inflated demand exceeds the budget.
//! struct FixedRate(f64);
//!
//! impl ControlPolicy for FixedRate {
//!     fn decide(&mut self, ctx: &ControlContext<'_>) -> ControlDecision {
//!         let demand: f64 = ctx.predictions.iter().sum();
//!         if demand <= ctx.available_cycles {
//!             return ControlDecision::full_rates(ctx.predictions.len());
//!         }
//!         ControlDecision {
//!             rates: vec![self.0; ctx.predictions.len()],
//!             reason: DecisionReason::Overload,
//!             ..ControlDecision::full_rates(ctx.predictions.len())
//!         }
//!     }
//!
//!     fn name(&self) -> String {
//!         format!("fixed_{:.2}", self.0)
//!     }
//! }
//! ```
//!
//! and installs with
//! [`MonitorBuilder::with_policy`](crate::MonitorBuilder::with_policy).

use netshed_fairness::{Allocation, AllocationStrategy, QueryDemand};
use netshed_sketch::{StateError, StateReader, StateWriter};

/// Everything a [`ControlPolicy`] sees when deciding one bin, in
/// registration order wherever a slice is per-query.
#[derive(Debug, Clone, Copy)]
pub struct ControlContext<'a> {
    /// Index of the time bin being decided.
    pub bin_index: u64,
    /// Per-query predicted full-batch cycles (zero for penalised queries).
    pub predictions: &'a [f64],
    /// Per-query demands: overuse-corrected predicted cycles plus the
    /// minimum sampling rate constraint (`m_q` of Chapter 5).
    pub demands: &'a [QueryDemand],
    /// Cycles available for query processing this bin (capacity minus
    /// overheads, adjusted by buffer discovery and the current delay).
    pub available_cycles: f64,
    /// Smoothed relative under-prediction error (Algorithm 1, line 17).
    pub error_ewma: f64,
    /// Smoothed cycles the shedding mechanism itself consumes per bin.
    pub shed_cycles_ewma: f64,
    /// Mean sampling rate the previous bin ran with (1.0 on the first bin).
    pub prev_mean_rate: f64,
    /// Total cycles the previous bin consumed (0.0 on the first bin).
    pub prev_total_cycles: f64,
    /// Cycles the *queries themselves* consumed the previous bin (0.0 on
    /// the first bin). Unlike [`prev_total_cycles`](Self::prev_total_cycles)
    /// this excludes the capture/extraction/prediction overheads, so it is
    /// directly comparable to the `Σ prediction × rate` a decision commits
    /// to — the denomination the degradation tripwire needs, since the
    /// fixed overheads would otherwise swamp the ratio at low rates.
    pub prev_query_cycles: f64,
    /// Packets dropped without control at the capture buffer this bin —
    /// overflow of the backlog earlier over-admission left behind. Crucial
    /// robustness signal: an overloaded bin *caps* its consumed cycles at
    /// roughly the capacity (the excess packets were dropped before costing
    /// anything), so a gamed predictor can hide an arbitrarily large
    /// overshoot from every cycle ratio while these drops pile up.
    pub uncontrolled_drops: u64,
    /// Configured floor for reactive-style global rates
    /// ([`MonitorConfig::reactive_min_rate`](crate::MonitorConfig)).
    pub rate_floor: f64,
    /// Per-query *actual* full-batch cycles of this bin, measured by a
    /// shadow execution. Only present when the policy returns `true` from
    /// [`ControlPolicy::needs_measured_cycles`]; queries registered without
    /// a spec fall back to their predicted value.
    pub measured_cycles: Option<&'a [f64]>,
}

/// Why a policy chose the rates it chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionReason {
    /// The (inflated) demand fits in the available cycles — nothing is shed.
    #[default]
    FitsInBudget,
    /// Rates follow from previous-bin feedback (Eq. 4.1).
    ReactiveFeedback,
    /// Demand exceeded the budget; an allocator split the shortfall.
    Overload,
    /// The degradation guard tripped: predictions have under-estimated the
    /// consumed cycles for too many consecutive bins (a predictor-gaming
    /// workload or a broken model), so the rates come from the conservative
    /// reactive fallback instead of the untrusted predictions. See
    /// [`DegradationGuard`](crate::robust::DegradationGuard).
    DegradedFallback,
    /// A policy-specific rule not covered by the variants above.
    Custom,
}

/// The introspectable record of one control-plane decision.
///
/// Flows into [`BinRecord::decision`](crate::BinRecord) and the
/// [`RunObserver::on_decision`](crate::RunObserver::on_decision) hook, so
/// experiments can see *why* a bin was shed, not just that it was.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDecision {
    /// Per-query sampling rates in registration order (0 = disabled).
    pub rates: Vec<f64>,
    /// Budget handed to the allocator, when one ran: cycles for the
    /// predictive/oracle family, rate-units (`rate × |Q|`) for the reactive
    /// family's minimum-rate conflict resolution. `None` when no allocator
    /// ran (full rates, or a uniform reactive rate that satisfied every
    /// minimum).
    pub budget: Option<f64>,
    /// Demand-inflation factor applied before comparing against the budget
    /// (`1 + error_ewma` for the predictive scheme, 1.0 when unused).
    pub inflation: f64,
    /// Per-query allocation detail, when a fairness allocator ran.
    pub allocations: Option<Vec<Allocation>>,
    /// Why the rates are what they are.
    pub reason: DecisionReason,
}

impl Default for ControlDecision {
    fn default() -> Self {
        Self {
            rates: Vec::new(),
            budget: None,
            inflation: 1.0,
            allocations: None,
            reason: DecisionReason::FitsInBudget,
        }
    }
}

impl ControlDecision {
    /// A decision that sheds nothing: rate 1.0 for every query.
    pub fn full_rates(queries: usize) -> Self {
        Self { rates: vec![1.0; queries], ..Self::default() }
    }

    /// Enforces the data-plane contract on a policy's output: every rate is
    /// clamped into `[0, 1]` (non-finite values collapse to 0), a positive
    /// rate below the query's registered minimum sampling rate disables the
    /// query instead (running below the floor would silently void the
    /// accuracy bound the minimum declares — `{0} ∪ [m_q, 1]` is the valid
    /// domain, exactly what the built-in allocators emit), and the vector is
    /// padded or truncated to one entry per query (missing entries default
    /// to 1.0, i.e. no shedding). The monitor applies this to every decision
    /// so a misbehaving custom policy cannot corrupt the data plane.
    pub(crate) fn sanitized(mut self, demands: &[QueryDemand]) -> Self {
        for (rate, demand) in self.rates.iter_mut().zip(demands) {
            *rate = if rate.is_finite() { rate.clamp(0.0, 1.0) } else { 0.0 };
            if *rate > 0.0 && *rate < demand.min_rate {
                *rate = 0.0;
            }
        }
        self.rates.resize(demands.len(), 1.0);
        self
    }
}

/// A pluggable control-plane policy: decides the per-query sampling rates of
/// every bin.
///
/// `decide` is called once per non-empty bin, *after* prediction and *before*
/// any query runs. Policies may keep state across bins (`&mut self`); the
/// monitor guarantees calls arrive in bin order. Determinism contract: the
/// same sequence of contexts must produce the same sequence of decisions, or
/// replay runs stop being reproducible.
pub trait ControlPolicy: Send {
    /// Decides one bin.
    fn decide(&mut self, ctx: &ControlContext<'_>) -> ControlDecision;

    /// Name used in reports and [`Monitor::policy_name`](crate::Monitor).
    fn name(&self) -> String;

    /// Returns `true` if the monitor should run a shadow execution per query
    /// to measure the *actual* full-batch cycles of each bin and expose them
    /// in [`ControlContext::measured_cycles`]. The shadow work is not charged
    /// against the capacity — it models an idealised oracle, not a deployable
    /// scheme.
    fn needs_measured_cycles(&self) -> bool {
        false
    }

    /// Serializes the policy's cross-bin state for a checkpoint. The default
    /// writes nothing — correct for stateless policies (all the built-ins
    /// except [`HysteresisReactivePolicy`]); stateful policies must override
    /// both hooks or their restored runs diverge from uninterrupted ones.
    fn save_state(&self, _writer: &mut StateWriter) -> Result<(), StateError> {
        Ok(())
    }

    /// Restores state written by [`ControlPolicy::save_state`].
    fn load_state(&mut self, _reader: &mut StateReader<'_>) -> Result<(), StateError> {
        Ok(())
    }
}

impl ControlPolicy for Box<dyn ControlPolicy> {
    fn decide(&mut self, ctx: &ControlContext<'_>) -> ControlDecision {
        self.as_mut().decide(ctx)
    }

    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn needs_measured_cycles(&self) -> bool {
        self.as_ref().needs_measured_cycles()
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        self.as_ref().save_state(writer)
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.as_mut().load_state(reader)
    }
}

/// Composes a reactive-family policy name: the base alone for the historical
/// default allocator (`eq_srates`), `base_allocator` otherwise.
pub(crate) fn reactive_family_name(base: &str, allocator: &dyn AllocationStrategy) -> String {
    match allocator.name() {
        "eq_srates" => base.to_string(),
        other => format!("{base}_{other}"),
    }
}

/// Equation 4.1: scale the previous bin's mean rate by how far its
/// consumption was from the budget, clamped into `[rate_floor, 1]`.
pub(crate) fn eq_4_1_rate(ctx: &ControlContext<'_>) -> f64 {
    if ctx.prev_total_cycles > 0.0 {
        (ctx.prev_mean_rate * ctx.available_cycles.max(0.0) / ctx.prev_total_cycles)
            .clamp(ctx.rate_floor, 1.0)
    } else {
        1.0
    }
}

/// Spreads a global rate over the queries and returns the decision for it:
/// when every minimum rate is satisfied the rate applies uniformly (the
/// exact historical behaviour, no allocator involved); when at least one
/// minimum binds, the allocator resolves the conflict over unit demands at
/// capacity `rate × |Q|` — `eq_srates` disables the violators, the max-min
/// schemes pin them at their minimum and redistribute. The decision's
/// `budget` reports the rate-unit capacity handed to the allocator, or
/// `None` on the uniform path.
pub(crate) fn spread_global_rate(
    allocator: &dyn AllocationStrategy,
    rate: f64,
    demands: &[QueryDemand],
) -> ControlDecision {
    if demands.iter().all(|demand| demand.min_rate <= rate) {
        return ControlDecision {
            rates: vec![rate; demands.len()],
            reason: DecisionReason::ReactiveFeedback,
            ..ControlDecision::default()
        };
    }
    let units: Vec<QueryDemand> =
        demands.iter().map(|demand| QueryDemand::new(1.0, demand.min_rate)).collect();
    let unit_capacity = rate * units.len() as f64;
    let allocations = allocator.allocate(&units, unit_capacity);
    ControlDecision {
        rates: allocations.iter().map(Allocation::rate).collect(),
        budget: Some(unit_capacity),
        inflation: 1.0,
        allocations: Some(allocations),
        reason: DecisionReason::ReactiveFeedback,
    }
}

/// The original CoMo behaviour: never shed; overload shows up as
/// uncontrolled drops at the capture buffer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSheddingPolicy;

impl ControlPolicy for NoSheddingPolicy {
    fn decide(&mut self, ctx: &ControlContext<'_>) -> ControlDecision {
        ControlDecision::full_rates(ctx.predictions.len())
    }

    fn name(&self) -> String {
        "no_lshed".to_string()
    }
}

/// Reactive shedding (Eq. 4.1): the global rate for this bin is the previous
/// rate scaled by how far the previous bin's consumption was from the budget.
///
/// Minimum sampling rates are honoured by routing the global rate through
/// the allocator whenever one binds (see the DESIGN.md control-plane notes);
/// with no binding minimums the behaviour is exactly the historical one.
pub struct ReactivePolicy {
    allocator: Box<dyn AllocationStrategy>,
}

impl ReactivePolicy {
    /// A reactive policy resolving minimum-rate conflicts with `allocator`.
    pub fn new(allocator: impl AllocationStrategy + 'static) -> Self {
        Self { allocator: Box::new(allocator) }
    }
}

impl ControlPolicy for ReactivePolicy {
    fn decide(&mut self, ctx: &ControlContext<'_>) -> ControlDecision {
        spread_global_rate(self.allocator.as_ref(), eq_4_1_rate(ctx), ctx.demands)
    }

    fn name(&self) -> String {
        reactive_family_name("reactive", self.allocator.as_ref())
    }
}

/// The paper's predictive scheme (Algorithm 1): inflate the predicted demand
/// by the smoothed prediction error; when it exceeds the available cycles,
/// hand the corrected budget to the fairness allocator.
pub struct PredictivePolicy {
    allocator: Box<dyn AllocationStrategy>,
}

impl PredictivePolicy {
    /// A predictive policy splitting overload with `allocator`.
    pub fn new(allocator: impl AllocationStrategy + 'static) -> Self {
        Self { allocator: Box::new(allocator) }
    }
}

impl ControlPolicy for PredictivePolicy {
    fn decide(&mut self, ctx: &ControlContext<'_>) -> ControlDecision {
        let predicted_total: f64 = ctx.predictions.iter().sum();
        let inflation = 1.0 + ctx.error_ewma;
        if predicted_total * inflation <= ctx.available_cycles || predicted_total <= 0.0 {
            return ControlDecision {
                inflation,
                ..ControlDecision::full_rates(ctx.predictions.len())
            };
        }
        // Budget for query processing after discounting the cycles the
        // shedding itself will need, corrected by the prediction error.
        let budget = ((ctx.available_cycles - ctx.shed_cycles_ewma).max(0.0)) / inflation;
        let allocations = self.allocator.allocate(ctx.demands, budget);
        ControlDecision {
            rates: allocations.iter().map(Allocation::rate).collect(),
            budget: Some(budget),
            inflation,
            allocations: Some(allocations),
            reason: DecisionReason::Overload,
        }
    }

    fn name(&self) -> String {
        self.allocator.name().to_string()
    }
}

/// An idealised policy that allocates from the bin's *actual* measured
/// cycles instead of a prediction: the upper bound every predictor is
/// compared against.
///
/// Requires a shadow execution per query
/// ([`ControlPolicy::needs_measured_cycles`]); its cycles are not charged
/// against the capacity, because the point of the oracle is to isolate the
/// quality of the *decision*, not to be deployable.
pub struct OraclePolicy {
    allocator: Box<dyn AllocationStrategy>,
}

impl OraclePolicy {
    /// An oracle splitting overload with `allocator`.
    pub fn new(allocator: impl AllocationStrategy + 'static) -> Self {
        Self { allocator: Box::new(allocator) }
    }
}

impl ControlPolicy for OraclePolicy {
    fn decide(&mut self, ctx: &ControlContext<'_>) -> ControlDecision {
        let actual = ctx.measured_cycles.unwrap_or(ctx.predictions);
        let total: f64 = actual.iter().sum();
        if total <= ctx.available_cycles || total <= 0.0 {
            return ControlDecision::full_rates(actual.len());
        }
        // No error inflation: the demand is exact. The shedding overhead of
        // the sampling mechanism still has to be budgeted for.
        let budget = (ctx.available_cycles - ctx.shed_cycles_ewma).max(0.0);
        let demands: Vec<QueryDemand> = actual
            .iter()
            .zip(ctx.demands)
            .map(|(&cycles, demand)| QueryDemand::new(cycles, demand.min_rate))
            .collect();
        let allocations = self.allocator.allocate(&demands, budget);
        ControlDecision {
            rates: allocations.iter().map(Allocation::rate).collect(),
            budget: Some(budget),
            inflation: 1.0,
            allocations: Some(allocations),
            reason: DecisionReason::Overload,
        }
    }

    fn name(&self) -> String {
        format!("oracle_{}", self.allocator.name())
    }

    fn needs_measured_cycles(&self) -> bool {
        true
    }
}

/// A reactive variant with hysteresis: the rate follows Eq. 4.1 *down*
/// immediately (overload is dangerous) but recovers *up* only by a fraction
/// of the gap per bin (slow decay of the shedding level), damping the
/// oscillation the plain reactive scheme shows around the capacity.
pub struct HysteresisReactivePolicy {
    allocator: Box<dyn AllocationStrategy>,
    /// Fraction of the gap to the target closed per bin when recovering.
    recovery: f64,
    /// The rate the previous bin ran with, according to this policy.
    current: f64,
}

impl HysteresisReactivePolicy {
    /// Default recovery fraction: closes a quarter of the gap per bin.
    pub const DEFAULT_RECOVERY: f64 = 0.25;

    /// A hysteresis policy resolving minimum-rate conflicts with `allocator`.
    pub fn new(allocator: impl AllocationStrategy + 'static) -> Self {
        Self { allocator: Box::new(allocator), recovery: Self::DEFAULT_RECOVERY, current: 1.0 }
    }

    /// Overrides the recovery fraction (clamped into `(0, 1]`).
    pub fn with_recovery(mut self, recovery: f64) -> Self {
        self.recovery = if recovery.is_finite() { recovery.clamp(1e-3, 1.0) } else { 1.0 };
        self
    }
}

impl ControlPolicy for HysteresisReactivePolicy {
    fn decide(&mut self, ctx: &ControlContext<'_>) -> ControlDecision {
        let target = eq_4_1_rate(ctx);
        let rate = if target < self.current {
            target
        } else {
            (self.current + self.recovery * (target - self.current)).min(1.0)
        };
        self.current = rate;
        spread_global_rate(self.allocator.as_ref(), rate, ctx.demands)
    }

    fn name(&self) -> String {
        reactive_family_name("reactive_hysteresis", self.allocator.as_ref())
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.f64(self.current);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.current = reader.f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_fairness::{EqualRates, MmfsPkt};

    fn ctx<'a>(
        predictions: &'a [f64],
        demands: &'a [QueryDemand],
        available: f64,
    ) -> ControlContext<'a> {
        ControlContext {
            bin_index: 0,
            predictions,
            demands,
            available_cycles: available,
            error_ewma: 0.0,
            shed_cycles_ewma: 0.0,
            prev_mean_rate: 1.0,
            prev_total_cycles: 0.0,
            prev_query_cycles: 0.0,
            uncontrolled_drops: 0,
            rate_floor: 0.05,
            measured_cycles: None,
        }
    }

    fn demands_of(predictions: &[f64], min_rate: f64) -> Vec<QueryDemand> {
        predictions.iter().map(|&p| QueryDemand::new(p, min_rate)).collect()
    }

    #[test]
    fn no_shedding_always_grants_full_rates() {
        let predictions = [1e9, 2e9];
        let demands = demands_of(&predictions, 0.5);
        let decision = NoSheddingPolicy.decide(&ctx(&predictions, &demands, 1.0));
        assert_eq!(decision.rates, vec![1.0, 1.0]);
        assert_eq!(decision.reason, DecisionReason::FitsInBudget);
    }

    #[test]
    fn predictive_fits_in_budget_without_overload() {
        let predictions = [100.0, 200.0];
        let demands = demands_of(&predictions, 0.0);
        let mut policy = PredictivePolicy::new(MmfsPkt);
        let decision = policy.decide(&ctx(&predictions, &demands, 1000.0));
        assert_eq!(decision.rates, vec![1.0, 1.0]);
        assert!(decision.allocations.is_none());
    }

    #[test]
    fn predictive_allocates_under_overload() {
        let predictions = [1000.0, 1000.0];
        let demands = demands_of(&predictions, 0.0);
        let mut policy = PredictivePolicy::new(MmfsPkt);
        let decision = policy.decide(&ctx(&predictions, &demands, 1000.0));
        assert_eq!(decision.reason, DecisionReason::Overload);
        assert_eq!(decision.budget, Some(1000.0));
        for rate in &decision.rates {
            assert!((rate - 0.5).abs() < 1e-9, "{:?}", decision.rates);
        }
    }

    #[test]
    fn reactive_spreads_the_global_rate_uniformly_when_minimums_allow() {
        let predictions = [500.0, 500.0];
        let demands = demands_of(&predictions, 0.1);
        let mut context = ctx(&predictions, &demands, 400.0);
        context.prev_mean_rate = 0.8;
        context.prev_total_cycles = 800.0;
        let mut policy = ReactivePolicy::new(EqualRates);
        let decision = policy.decide(&context);
        // Eq. 4.1: 0.8 × 400 / 800 = 0.4 for everyone.
        assert_eq!(decision.rates, vec![0.4, 0.4]);
        assert!(decision.allocations.is_none());
        assert_eq!(decision.reason, DecisionReason::ReactiveFeedback);
    }

    #[test]
    fn reactive_routes_binding_minimums_through_the_allocator() {
        let predictions = [500.0, 500.0];
        // One query cannot run below 0.9: at a global rate of 0.4 eq_srates
        // must disable it and recompute the rate for the survivor.
        let demands = vec![QueryDemand::new(500.0, 0.9), QueryDemand::new(500.0, 0.1)];
        let mut context = ctx(&predictions, &demands, 400.0);
        context.prev_mean_rate = 0.8;
        context.prev_total_cycles = 800.0;
        let mut policy = ReactivePolicy::new(EqualRates);
        let decision = policy.decide(&context);
        assert_eq!(decision.rates[0], 0.0, "unmeetable minimum must disable the query");
        assert!(decision.rates[1] > 0.4, "the survivor inherits the freed share");
        assert!(decision.allocations.is_some());
    }

    #[test]
    fn oracle_uses_measured_cycles_over_predictions() {
        let predictions = [10.0, 10.0]; // wildly under-predicted
        let measured = [1000.0, 1000.0];
        let demands = demands_of(&predictions, 0.0);
        let mut context = ctx(&predictions, &demands, 1000.0);
        context.measured_cycles = Some(&measured);
        let mut policy = OraclePolicy::new(MmfsPkt);
        assert!(policy.needs_measured_cycles());
        let decision = policy.decide(&context);
        assert_eq!(decision.reason, DecisionReason::Overload);
        for rate in &decision.rates {
            assert!((rate - 0.5).abs() < 1e-9, "{:?}", decision.rates);
        }
    }

    #[test]
    fn hysteresis_sheds_immediately_but_recovers_slowly() {
        let predictions = [500.0];
        let demands = demands_of(&predictions, 0.0);
        let mut policy = HysteresisReactivePolicy::new(EqualRates).with_recovery(0.25);

        // Overloaded bin: target 0.25, taken immediately.
        let mut context = ctx(&predictions, &demands, 250.0);
        context.prev_mean_rate = 1.0;
        context.prev_total_cycles = 1000.0;
        let down = policy.decide(&context);
        assert!((down.rates[0] - 0.25).abs() < 1e-9);

        // Load vanishes: target 1.0, but only a quarter of the gap is closed.
        let mut context = ctx(&predictions, &demands, 1000.0);
        context.prev_mean_rate = 0.25;
        context.prev_total_cycles = 100.0;
        let up = policy.decide(&context);
        let expected = 0.25 + 0.25 * (1.0 - 0.25);
        assert!((up.rates[0] - expected).abs() < 1e-9, "{}", up.rates[0]);
    }

    #[test]
    fn names_compose_from_the_parts() {
        assert_eq!(NoSheddingPolicy.name(), "no_lshed");
        assert_eq!(ReactivePolicy::new(EqualRates).name(), "reactive");
        assert_eq!(ReactivePolicy::new(MmfsPkt).name(), "reactive_mmfs_pkt");
        assert_eq!(PredictivePolicy::new(EqualRates).name(), "eq_srates");
        assert_eq!(PredictivePolicy::new(MmfsPkt).name(), "mmfs_pkt");
        assert_eq!(OraclePolicy::new(MmfsPkt).name(), "oracle_mmfs_pkt");
        assert_eq!(HysteresisReactivePolicy::new(EqualRates).name(), "reactive_hysteresis");
    }

    #[test]
    fn sanitize_clamps_pads_and_enforces_minimum_rates() {
        let decision =
            ControlDecision { rates: vec![f64::NAN, -3.0, 0.5, 2.0], ..ControlDecision::default() };
        let demands = vec![QueryDemand::new(1.0, 0.0); 5];
        let cleaned = decision.sanitized(&demands);
        assert_eq!(cleaned.rates, vec![0.0, 0.0, 0.5, 1.0, 1.0]);

        // A positive rate below a query's declared minimum disables the
        // query instead of running it below its accuracy floor; rates at or
        // above the minimum (and exact zeros) pass through.
        let decision = ControlDecision { rates: vec![0.2, 0.2, 0.0], ..ControlDecision::default() };
        let demands = vec![
            QueryDemand::new(1.0, 0.57),
            QueryDemand::new(1.0, 0.2),
            QueryDemand::new(1.0, 0.57),
        ];
        assert_eq!(decision.sanitized(&demands).rates, vec![0.0, 0.2, 0.0]);
    }

    #[test]
    fn reactive_budget_reports_the_allocator_input_or_none() {
        let predictions = [500.0, 500.0];
        // Uniform path: no allocator ran, budget must be None.
        let free = demands_of(&predictions, 0.0);
        let mut context = ctx(&predictions, &free, 400.0);
        context.prev_mean_rate = 0.8;
        context.prev_total_cycles = 800.0;
        let decision = ReactivePolicy::new(EqualRates).decide(&context);
        assert_eq!(decision.budget, None);

        // Binding minimum: the allocator was handed rate × |Q| rate-units.
        let binding = vec![QueryDemand::new(500.0, 0.9), QueryDemand::new(500.0, 0.1)];
        let mut context = ctx(&predictions, &binding, 400.0);
        context.prev_mean_rate = 0.8;
        context.prev_total_cycles = 800.0;
        let decision = ReactivePolicy::new(EqualRates).decide(&context);
        assert_eq!(decision.budget, Some(0.4 * 2.0));
        assert!(decision.allocations.is_some());
    }
}
