//! Run observers: pluggable per-bin and per-interval bookkeeping.
//!
//! [`Monitor::run`](crate::Monitor::run) drives the pipeline; a
//! [`RunObserver`] watches it. Observers replace the hand-rolled bookkeeping
//! loops of the old API — collecting summaries, streaming records to disk and
//! tracking accuracy against a reference execution all become reusable
//! components that can be composed with plain tuples:
//!
//! ```
//! use netshed_monitor::{AccuracyTracker, Monitor, RunSummary};
//! use netshed_queries::{QueryKind, QuerySpec};
//! use netshed_trace::{PacketSourceExt, TraceConfig, TraceGenerator};
//!
//! let specs = vec![QuerySpec::new(QueryKind::Counter)];
//! let mut monitor =
//!     Monitor::builder().capacity(1e12).no_noise().queries(specs.clone()).build().unwrap();
//! let mut source = TraceGenerator::new(TraceConfig::default()).take_batches(12);
//! let mut accuracy = AccuracyTracker::new(&specs, monitor.config().measurement_interval_us);
//! let summary = monitor.run(&mut source, &mut accuracy).unwrap();
//! assert_eq!(summary.bins + summary.empty_bins, 12);
//! assert!(accuracy.mean_accuracy().values().all(|a| *a > 0.99));
//! ```

use crate::policy::ControlDecision;
use crate::reference::ReferenceRunner;
use crate::report::{BinRecord, RunSummary};
use netshed_queries::{QueryOutput, QuerySpec};
use netshed_trace::Batch;
// The tracker's error maps are part of the public API and get iterated by
// callers (reports, plots), so they are ordered (determinism contract, rule
// `det-map`): name-sorted on every run, independent of insertion history.
use std::collections::BTreeMap;
use std::io::Write;

/// Receives pipeline events during [`Monitor::run`](crate::Monitor::run).
///
/// All methods default to no-ops, so implementations override only the
/// events they care about. Per processed batch the order is `on_batch` →
/// `on_interval` (only when that batch closed a measurement interval) →
/// `on_decision` → `on_bin`; after the source is exhausted the final
/// interval flush arrives via `on_interval` and `on_end` closes the run.
pub trait RunObserver {
    /// Called with every non-empty batch before the monitor processes it.
    fn on_batch(&mut self, batch: &Batch) {
        let _ = batch;
    }

    /// Called after each processed bin with the control-plane decision that
    /// set its sampling rates — why the bin was (or was not) shed. The same
    /// decision also rides on the subsequent `on_bin` record.
    fn on_decision(&mut self, bin_index: u64, decision: &ControlDecision) {
        let _ = (bin_index, decision);
    }

    /// Called after each processed bin with its full record.
    fn on_bin(&mut self, record: &BinRecord) {
        let _ = record;
    }

    /// Called whenever a measurement interval closes, with the per-query
    /// outputs (label → output).
    fn on_interval(&mut self, outputs: &[(String, QueryOutput)]) {
        let _ = outputs;
    }

    /// Called once when the run ends, with the aggregated summary.
    fn on_end(&mut self, summary: &RunSummary) {
        let _ = summary;
    }
}

/// Ignores every event (for runs where only the returned summary matters).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RunObserver for NullObserver {}

/// A [`RunSummary`] can observe a run directly, accumulating itself.
impl RunObserver for RunSummary {
    fn on_bin(&mut self, record: &BinRecord) {
        self.absorb(record);
    }

    fn on_end(&mut self, summary: &RunSummary) {
        // Empty bins never reach `on_bin` (the run skips them), so take the
        // count from the authoritative summary to stay identical to it.
        self.empty_bins = summary.empty_bins;
    }
}

/// Observers compose with tuples: both members see every event.
impl<A: RunObserver, B: RunObserver> RunObserver for (A, B) {
    fn on_batch(&mut self, batch: &Batch) {
        self.0.on_batch(batch);
        self.1.on_batch(batch);
    }

    fn on_decision(&mut self, bin_index: u64, decision: &ControlDecision) {
        self.0.on_decision(bin_index, decision);
        self.1.on_decision(bin_index, decision);
    }

    fn on_bin(&mut self, record: &BinRecord) {
        self.0.on_bin(record);
        self.1.on_bin(record);
    }

    fn on_interval(&mut self, outputs: &[(String, QueryOutput)]) {
        self.0.on_interval(outputs);
        self.1.on_interval(outputs);
    }

    fn on_end(&mut self, summary: &RunSummary) {
        self.0.on_end(summary);
        self.1.on_end(summary);
    }
}

/// Output format of a [`RecordSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SinkFormat {
    Csv,
    Json,
}

/// Streams one line per processed bin to any [`Write`] destination.
///
/// CSV emits a header row followed by data rows; JSON emits newline-delimited
/// objects (NDJSON), one per bin — both formats load directly into pandas /
/// polars / jq for the plotting work the paper's figures need.
pub struct RecordSink<W: Write> {
    writer: W,
    format: SinkFormat,
    header_written: bool,
    error: Option<std::io::Error>,
}

impl<W: Write> RecordSink<W> {
    /// A sink writing CSV rows.
    pub fn csv(writer: W) -> Self {
        Self { writer, format: SinkFormat::Csv, header_written: false, error: None }
    }

    /// A sink writing newline-delimited JSON objects.
    pub fn json(writer: W) -> Self {
        Self { writer, format: SinkFormat::Json, header_written: false, error: None }
    }

    /// Finishes writing and returns the destination. Check [`Self::error`]
    /// first: a sink that hit an I/O error stopped writing at that point.
    pub fn into_inner(self) -> W {
        self.writer
    }

    /// The first I/O error the destination reported, if any. Observers
    /// cannot abort a run, so failures are latched here instead of lost.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    fn write_record(&mut self, record: &BinRecord) -> std::io::Result<()> {
        match self.format {
            SinkFormat::Csv => {
                if !self.header_written {
                    writeln!(
                        self.writer,
                        "bin_index,incoming_packets,uncontrolled_drops,unsampled_packets,\
                         available_cycles,predicted_cycles,query_cycles,total_cycles,\
                         buffer_occupation,mean_sampling_rate"
                    )?;
                    self.header_written = true;
                }
                writeln!(
                    self.writer,
                    "{},{},{},{},{:.1},{:.1},{:.1},{:.1},{:.4},{:.4}",
                    record.bin_index,
                    record.incoming_packets,
                    record.uncontrolled_drops,
                    record.unsampled_packets,
                    record.available_cycles,
                    record.predicted_cycles,
                    record.query_cycles,
                    record.total_cycles(),
                    record.buffer_occupation,
                    record.mean_sampling_rate()
                )
            }
            SinkFormat::Json => {
                writeln!(
                    self.writer,
                    "{{\"bin_index\":{},\"incoming_packets\":{},\"uncontrolled_drops\":{},\
                     \"unsampled_packets\":{},\"available_cycles\":{:.1},\
                     \"predicted_cycles\":{:.1},\"query_cycles\":{:.1},\"total_cycles\":{:.1},\
                     \"buffer_occupation\":{:.4},\"mean_sampling_rate\":{:.4}}}",
                    record.bin_index,
                    record.incoming_packets,
                    record.uncontrolled_drops,
                    record.unsampled_packets,
                    record.available_cycles,
                    record.predicted_cycles,
                    record.query_cycles,
                    record.total_cycles(),
                    record.buffer_occupation,
                    record.mean_sampling_rate()
                )
            }
        }
    }
}

impl<W: Write> RunObserver for RecordSink<W> {
    fn on_bin(&mut self, record: &BinRecord) {
        if self.error.is_some() {
            return;
        }
        if let Err(error) = self.write_record(record) {
            self.error = Some(error);
        }
    }

    fn on_end(&mut self, _summary: &RunSummary) {
        if self.error.is_none() {
            if let Err(error) = self.writer.flush() {
                self.error = Some(error);
            }
        }
    }
}

/// Tracks per-query accuracy against an unconstrained reference execution.
///
/// The tracker feeds every batch to its own [`ReferenceRunner`] and pairs the
/// monitor's interval outputs with the reference's, accumulating the
/// per-query error series that the paper's accuracy evaluations plot.
pub struct AccuracyTracker {
    reference: ReferenceRunner,
    pending_truth: Option<Vec<(String, QueryOutput)>>,
    errors: BTreeMap<String, Vec<f64>>,
}

impl AccuracyTracker {
    /// Creates a tracker running the given specs as ground truth.
    ///
    /// `measurement_interval_us` must equal the monitored side's interval or
    /// the two executions close intervals on different boundaries and the
    /// pairing silently misaligns — derive it from the monitor:
    /// `AccuracyTracker::new(&specs, monitor.config().measurement_interval_us)`.
    pub fn new(specs: &[QuerySpec], measurement_interval_us: u64) -> Self {
        Self {
            reference: ReferenceRunner::new(specs, measurement_interval_us),
            pending_truth: None,
            errors: BTreeMap::new(),
        }
    }

    /// Registers another reference query mid-run (mirror any
    /// [`Monitor::register`](crate::Monitor::register) call on the monitored
    /// side, or the outputs will stop lining up).
    pub fn register(&mut self, spec: &QuerySpec) {
        self.reference.register(spec);
    }

    /// Per-query mean relative error over the run, name-sorted.
    pub fn mean_error(&self) -> BTreeMap<String, f64> {
        self.errors
            .iter()
            .map(|(name, errs)| (name.clone(), errs.iter().sum::<f64>() / errs.len().max(1) as f64))
            .collect()
    }

    /// Per-query mean accuracy (1 - error) over the run, name-sorted.
    pub fn mean_accuracy(&self) -> BTreeMap<String, f64> {
        self.mean_error().into_iter().map(|(name, err)| (name, 1.0 - err)).collect()
    }

    /// Per-query error series, one value per closed measurement interval,
    /// name-sorted.
    pub fn error_series(&self) -> &BTreeMap<String, Vec<f64>> {
        &self.errors
    }

    fn pair(&mut self, outputs: &[(String, QueryOutput)], truths: &[(String, QueryOutput)]) {
        for ((name, output), (truth_name, truth)) in outputs.iter().zip(truths) {
            debug_assert_eq!(name, truth_name, "monitor and reference must stay in lockstep");
            self.errors.entry(name.clone()).or_default().push(output.error_against(truth));
        }
    }
}

impl RunObserver for AccuracyTracker {
    fn on_batch(&mut self, batch: &Batch) {
        if let Some(truths) = self.reference.process_batch(batch) {
            self.pending_truth = Some(truths);
        }
    }

    fn on_interval(&mut self, outputs: &[(String, QueryOutput)]) {
        // Mid-run intervals pair with the truth the reference emitted for the
        // same batch; the final flush (no batch preceded it) closes the
        // reference's own last interval instead.
        let truths = match self.pending_truth.take() {
            Some(truths) => truths,
            None => self.reference.finish_interval(),
        };
        self.pair(outputs, &truths);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonitorConfig;
    use crate::monitor::Monitor;
    use netshed_queries::QueryKind;
    use netshed_trace::{PacketSourceExt, TraceConfig, TraceGenerator};

    fn test_monitor(specs: &[QuerySpec]) -> Monitor {
        let mut monitor =
            Monitor::new(MonitorConfig::default().with_capacity(1e12).without_noise());
        for spec in specs {
            monitor.register(spec).expect("valid spec");
        }
        monitor
    }

    fn test_source(batches: usize) -> impl netshed_trace::PacketSource {
        TraceGenerator::new(TraceConfig::default().with_seed(5).with_mean_packets_per_batch(80.0))
            .take_batches(batches)
    }

    #[test]
    fn summary_observer_matches_returned_summary() {
        let specs = vec![QuerySpec::new(QueryKind::Counter)];
        let mut monitor = test_monitor(&specs);
        let mut observed = RunSummary::default();
        let returned = monitor.run(&mut test_source(15), &mut observed).expect("run");
        assert_eq!(observed.bins, returned.bins);
        assert_eq!(observed.cycles_per_bin, returned.cycles_per_bin);
    }

    #[test]
    fn csv_sink_writes_header_and_rows() {
        let specs = vec![QuerySpec::new(QueryKind::Counter)];
        let mut monitor = test_monitor(&specs);
        let mut sink = RecordSink::csv(Vec::new());
        let summary = monitor.run(&mut test_source(8), &mut sink).expect("run");
        let written = String::from_utf8(sink.into_inner()).expect("utf8");
        let lines: Vec<&str> = written.lines().collect();
        assert_eq!(lines.len() as u64, summary.bins + 1);
        assert!(lines[0].starts_with("bin_index,"));
        assert!(lines[1].split(',').count() >= 10);
    }

    #[test]
    fn json_sink_writes_one_object_per_bin() {
        let specs = vec![QuerySpec::new(QueryKind::Counter)];
        let mut monitor = test_monitor(&specs);
        let mut sink = RecordSink::json(Vec::new());
        let summary = monitor.run(&mut test_source(8), &mut sink).expect("run");
        let written = String::from_utf8(sink.into_inner()).expect("utf8");
        let lines: Vec<&str> = written.lines().collect();
        assert_eq!(lines.len() as u64, summary.bins);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines[0].contains("\"bin_index\":0"));
    }

    #[test]
    fn accuracy_tracker_reports_perfect_accuracy_without_shedding() {
        let specs = vec![QuerySpec::new(QueryKind::Counter), QuerySpec::new(QueryKind::Flows)];
        let mut monitor = test_monitor(&specs);
        let mut tracker = AccuracyTracker::new(&specs, 1_000_000);
        monitor.run(&mut test_source(25), &mut tracker).expect("run");
        let accuracy = tracker.mean_accuracy();
        assert_eq!(accuracy.len(), 2);
        for (name, value) in accuracy {
            assert!(value > 0.999, "{name} accuracy {value} should be perfect without shedding");
        }
        // 25 batches = 2 mid-run intervals + the final flush.
        assert!(tracker.error_series().values().all(|series| series.len() == 3));
    }

    #[test]
    fn accuracy_maps_iterate_in_query_name_order() {
        // Registration order is flows-before-counter on purpose: the maps
        // must iterate name-sorted regardless of insertion history, so the
        // accuracy report is byte-identical run over run.
        let specs = vec![QuerySpec::new(QueryKind::Flows), QuerySpec::new(QueryKind::Counter)];
        let mut monitor = test_monitor(&specs);
        let mut tracker = AccuracyTracker::new(&specs, 1_000_000);
        monitor.run(&mut test_source(12), &mut tracker).expect("run");
        let names: Vec<String> = tracker.mean_error().into_keys().collect();
        assert_eq!(names, vec!["counter", "flows"]);
        let series_names: Vec<&String> = tracker.error_series().keys().collect();
        assert_eq!(series_names, vec!["counter", "flows"]);
    }

    #[test]
    fn record_sink_latches_the_first_io_error() {
        struct FailingWriter;
        impl std::io::Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }

            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let specs = vec![QuerySpec::new(QueryKind::Counter)];
        let mut monitor = test_monitor(&specs);
        let mut sink = RecordSink::csv(FailingWriter);
        monitor.run(&mut test_source(4), &mut sink).expect("run itself succeeds");
        let error = sink.error().expect("write failure must be latched, not lost");
        assert_eq!(error.to_string(), "disk full");
    }

    #[test]
    fn summary_observer_tracks_empty_bins() {
        use netshed_trace::{Batch, BatchReplay};
        let specs = vec![QuerySpec::new(QueryKind::Counter)];
        let mut monitor = test_monitor(&specs);
        let mut batches = TraceGenerator::new(
            TraceConfig::default().with_seed(8).with_mean_packets_per_batch(50.0),
        )
        .batches(5);
        batches.insert(2, Batch::empty(99, 9_900_000, 100_000));
        let mut observed = RunSummary::default();
        let returned = monitor.run(&mut BatchReplay::new(batches), &mut observed).expect("run");
        assert_eq!(returned.empty_bins, 1);
        assert_eq!(observed, returned, "the observing summary must match the returned one");
    }

    #[test]
    fn decisions_are_observed_once_per_bin() {
        use crate::policy::DecisionReason;
        struct Decisions {
            bins: Vec<u64>,
            all_full: bool,
        }
        impl RunObserver for Decisions {
            fn on_decision(&mut self, bin_index: u64, decision: &ControlDecision) {
                self.bins.push(bin_index);
                self.all_full &= decision.reason == DecisionReason::FitsInBudget
                    && decision.rates.iter().all(|rate| (*rate - 1.0).abs() < 1e-12);
            }
        }
        let specs = vec![QuerySpec::new(QueryKind::Counter)];
        let mut monitor = test_monitor(&specs);
        let mut decisions = Decisions { bins: Vec::new(), all_full: true };
        let summary = monitor.run(&mut test_source(10), &mut decisions).expect("run");
        assert_eq!(decisions.bins.len() as u64, summary.bins);
        assert!(decisions.all_full, "ample capacity must never shed");
    }

    #[test]
    fn tuple_observers_both_see_events() {
        let specs = vec![QuerySpec::new(QueryKind::Counter)];
        let mut monitor = test_monitor(&specs);
        let mut pair = (RunSummary::default(), RecordSink::csv(Vec::new()));
        let returned = monitor.run(&mut test_source(6), &mut pair).expect("run");
        assert_eq!(pair.0.bins, returned.bins);
        assert!(!pair.1.into_inner().is_empty());
    }
}
