//! Reference (ground truth) execution of a query set.
//!
//! Accuracy in the paper is always measured against a lossless packet-level
//! trace processed without any resource constraint (Section 2.3.3 collects a
//! full trace on a second machine for exactly this purpose). The
//! [`ReferenceRunner`] plays that role: it runs its own instances of the
//! queries over every batch at sampling rate 1.0 and reports their outputs at
//! the same measurement interval boundaries as the [`Monitor`](crate::Monitor).

use netshed_queries::{build_query_from_spec, CycleMeter, Query, QueryOutput, QuerySpec};
use netshed_trace::Batch;

/// Unconstrained reference execution used as accuracy ground truth.
pub struct ReferenceRunner {
    queries: Vec<(String, Box<dyn Query>)>,
    measurement_interval_us: u64,
    current_interval: Option<u64>,
    /// Total cycles the reference execution would have needed (useful to
    /// derive overload factors for experiments).
    total_cycles: u64,
    bins: u64,
}

impl ReferenceRunner {
    /// Creates a reference runner for the given query specifications.
    pub fn new(specs: &[QuerySpec], measurement_interval_us: u64) -> Self {
        Self {
            queries: specs
                .iter()
                .map(|spec| (spec.resolved_label(), build_query_from_spec(spec)))
                .collect(),
            measurement_interval_us,
            current_interval: None,
            total_cycles: 0,
            bins: 0,
        }
    }

    /// Adds another query instance mid-run (mirrors
    /// [`Monitor::register`](crate::Monitor::register)).
    pub fn register(&mut self, spec: &QuerySpec) {
        self.queries.push((spec.resolved_label(), build_query_from_spec(spec)));
    }

    /// Labels of the registered queries.
    pub fn query_names(&self) -> Vec<String> {
        self.queries.iter().map(|(label, _)| label.clone()).collect()
    }

    /// Mean cycles per bin the unconstrained execution needed so far.
    pub fn mean_cycles_per_bin(&self) -> f64 {
        if self.bins == 0 {
            return 0.0;
        }
        self.total_cycles as f64 / self.bins as f64
    }

    /// Processes one batch; returns the per-query outputs when the batch
    /// starts a new measurement interval (i.e. the previous one just closed).
    pub fn process_batch(&mut self, batch: &Batch) -> Option<Vec<(String, QueryOutput)>> {
        let interval = batch.measurement_interval(self.measurement_interval_us);
        let outputs = if self.current_interval.is_some() && self.current_interval != Some(interval)
        {
            Some(self.close_interval())
        } else {
            None
        };
        self.current_interval = Some(interval);

        let view = batch.view();
        for (_, query) in &mut self.queries {
            let mut meter = CycleMeter::new();
            query.process_batch(&view, 1.0, &mut meter);
            self.total_cycles += meter.cycles();
        }
        self.bins += 1;
        outputs
    }

    /// Flushes the final interval.
    pub fn finish_interval(&mut self) -> Vec<(String, QueryOutput)> {
        self.current_interval = None;
        self.close_interval()
    }

    fn close_interval(&mut self) -> Vec<(String, QueryOutput)> {
        self.queries
            .iter_mut()
            .map(|(label, query)| (label.clone(), query.end_interval()))
            .collect()
    }
}

/// Measures the mean per-bin cycle demand of a query set over a batch slice,
/// counting only the query-processing cycles.
///
/// Experiments use this to derive the monitor capacity for a target overload
/// factor `K` (Section 5.4): `capacity = demand × (1 - K)`.
pub fn measure_demand(specs: &[QuerySpec], batches: &[Batch], measurement_interval_us: u64) -> f64 {
    let mut runner = ReferenceRunner::new(specs, measurement_interval_us);
    for batch in batches {
        runner.process_batch(batch);
    }
    runner.mean_cycles_per_bin()
}

/// Measures the mean per-bin *total* demand of a query set — query cycles
/// plus the monitoring system's own overhead (feature extraction, prediction,
/// platform tasks) — by running an unconstrained monitor without shedding.
///
/// This is the right baseline for setting a capacity with a target overload
/// factor: the monitoring overhead is not sheddable, so a capacity below it
/// starves every query regardless of the strategy.
///
/// # Errors
///
/// Returns [`NetshedError::InvalidConfig`](crate::NetshedError::InvalidConfig)
/// when a spec in `specs` is rejected by the measuring monitor — the same
/// validation [`Monitor::register`](crate::Monitor::register) applies.
pub fn measure_total_demand(
    specs: &[QuerySpec],
    batches: &[Batch],
) -> Result<f64, crate::NetshedError> {
    use crate::config::{MonitorConfig, Strategy};
    let config = MonitorConfig::default()
        .with_capacity(1e15)
        .with_strategy(Strategy::NoShedding)
        .without_noise();
    let mut monitor = crate::Monitor::new(config);
    for spec in specs {
        monitor.register(spec)?;
    }
    let mut processed = Vec::new();
    for batch in batches.iter().filter(|batch| !batch.is_empty()) {
        processed.push(monitor.process_batch(batch)?.total_cycles());
    }
    if processed.is_empty() {
        return Ok(0.0);
    }
    // Quiet bins are excluded from the mean: demand is per *active* bin, so a
    // capacity derived from it errs towards over- rather than under-provision.
    Ok(processed.iter().sum::<f64>() / processed.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_queries::QueryKind;
    use netshed_trace::{TraceConfig, TraceGenerator};

    #[test]
    fn reference_emits_outputs_per_interval() {
        let mut generator = TraceGenerator::new(
            TraceConfig::default().with_seed(1).with_mean_packets_per_batch(100.0),
        );
        let specs = vec![QuerySpec::new(QueryKind::Counter), QuerySpec::new(QueryKind::Flows)];
        let mut runner = ReferenceRunner::new(&specs, 1_000_000);
        let mut closed = 0;
        for _ in 0..25 {
            if runner.process_batch(&generator.next_batch()).is_some() {
                closed += 1;
            }
        }
        assert_eq!(closed, 2);
        let final_outputs = runner.finish_interval();
        assert_eq!(final_outputs.len(), 2);
        assert_eq!(runner.query_names(), vec!["counter".to_string(), "flows".to_string()]);
    }

    #[test]
    fn measured_demand_is_positive_and_grows_with_query_count() {
        let mut generator = TraceGenerator::new(
            TraceConfig::default().with_seed(2).with_mean_packets_per_batch(200.0),
        );
        let batches = generator.batches(10);
        let one = measure_demand(&[QuerySpec::new(QueryKind::Counter)], &batches, 1_000_000);
        let two = measure_demand(
            &[QuerySpec::new(QueryKind::Counter), QuerySpec::new(QueryKind::Flows)],
            &batches,
            1_000_000,
        );
        assert!(one > 0.0);
        assert!(two > one);
    }
}
