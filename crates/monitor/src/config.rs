//! Monitor configuration: capacity, strategy, prediction and enforcement.
//!
//! The [`Strategy`] and [`PredictorKind`] enums are the *validated
//! constructors* for the built-in control-plane components: each variant
//! names exactly one [`ControlPolicy`](crate::policy::ControlPolicy) /
//! [`PredictorFactory`](netshed_predict::PredictorFactory) configuration the
//! paper evaluates. Components outside the enums plug in through
//! [`MonitorBuilder::with_policy`](crate::MonitorBuilder::with_policy) and
//! [`MonitorBuilder::with_predictor`](crate::MonitorBuilder::with_predictor).

use crate::error::NetshedError;
use crate::policy::{ControlPolicy, NoSheddingPolicy, PredictivePolicy, ReactivePolicy};
use netshed_fairness::{AllocationStrategy, EqualRates, MmfsCpu, MmfsPkt};
use netshed_predict::{
    EwmaPredictor, MlrConfig, MlrPredictor, Predictor, PredictorFactory, RobustMlrConfig,
    RobustMlrPredictor, SlrPredictor,
};

/// How sampling rates are assigned to queries when load must be shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// The Chapter 4 scheme: one common sampling rate for all queries
    /// (queries whose minimum rate cannot be met are disabled for the batch).
    EqualRates,
    /// Max-min fair share in terms of CPU cycles (Section 5.2.1).
    MmfsCpu,
    /// Max-min fair share in terms of packet access (Section 5.2.2).
    MmfsPkt,
}

impl AllocationPolicy {
    /// Short name used in reports and composed strategy names.
    pub fn name(&self) -> &'static str {
        self.allocator().name()
    }

    /// The built-in [`AllocationStrategy`] this variant constructs.
    pub fn allocator(&self) -> Box<dyn AllocationStrategy> {
        match self {
            AllocationPolicy::EqualRates => Box::new(EqualRates),
            AllocationPolicy::MmfsCpu => Box::new(MmfsCpu),
            AllocationPolicy::MmfsPkt => Box::new(MmfsPkt),
        }
    }
}

/// The load shedding strategy of the monitoring system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Original CoMo: no explicit load shedding; packets are dropped without
    /// control at the capture buffer when the system falls behind.
    NoShedding,
    /// Reactive shedding: the sampling rate for the next batch is derived
    /// from the cycles consumed by the previous batch (Equation 4.1).
    Reactive(AllocationPolicy),
    /// The paper's predictive scheme (Algorithm 1).
    Predictive(AllocationPolicy),
}

impl Strategy {
    /// All seven built-in strategy configurations the paper evaluates, in
    /// manifest order.
    pub const ALL: [Strategy; 7] = [
        Strategy::NoShedding,
        Strategy::Reactive(AllocationPolicy::EqualRates),
        Strategy::Reactive(AllocationPolicy::MmfsCpu),
        Strategy::Reactive(AllocationPolicy::MmfsPkt),
        Strategy::Predictive(AllocationPolicy::EqualRates),
        Strategy::Predictive(AllocationPolicy::MmfsCpu),
        Strategy::Predictive(AllocationPolicy::MmfsPkt),
    ];

    /// Short name used in reports and experiment output, composed from the
    /// strategy family and the allocation policy it carries.
    pub fn name(&self) -> String {
        self.control_policy().name()
    }

    /// Resolves a historical name back to its strategy (the inverse of
    /// [`Strategy::name`]); `None` for names outside the built-in seven.
    /// `.nsck` snapshots store the active strategy by this name.
    pub fn from_name(name: &str) -> Option<Strategy> {
        Strategy::ALL.into_iter().find(|strategy| strategy.name() == name)
    }

    /// The built-in [`ControlPolicy`] this variant constructs — the single
    /// source of truth for what each enum value means. The enum path and the
    /// trait path are bit-identical because they are the same code.
    pub fn control_policy(&self) -> Box<dyn ControlPolicy> {
        match self {
            Strategy::NoShedding => Box::new(NoSheddingPolicy),
            Strategy::Reactive(policy) => Box::new(ReactivePolicy::new(policy.allocator())),
            Strategy::Predictive(policy) => Box::new(PredictivePolicy::new(policy.allocator())),
        }
    }

    /// Returns the allocation policy, if the strategy sheds load at all.
    pub fn policy(&self) -> Option<AllocationPolicy> {
        match self {
            Strategy::NoShedding => None,
            Strategy::Reactive(policy) | Strategy::Predictive(policy) => Some(*policy),
        }
    }
}

/// Which per-query predictor drives the predictive strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// MLR with FCBF feature selection (the paper's method).
    MlrFcbf,
    /// MLR hardened against predictor-gaming traffic: outlier-clamped
    /// residuals, forgetting-factor history and non-finite guards, with
    /// bit-identical arithmetic on benign workloads (see
    /// [`RobustMlrPredictor`]).
    RobustMlrFcbf,
    /// Simple linear regression on the packet count.
    Slr,
    /// Exponentially weighted moving average of past cycles.
    Ewma,
}

impl PredictorKind {
    /// Every predictor kind, in a stable order.
    pub const ALL: [PredictorKind; 4] = [
        PredictorKind::MlrFcbf,
        PredictorKind::RobustMlrFcbf,
        PredictorKind::Slr,
        PredictorKind::Ewma,
    ];

    /// Stable identifier used in reports, benchmarks and `.nsck` snapshots.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::MlrFcbf => "mlr_fcbf",
            PredictorKind::RobustMlrFcbf => "robust_mlr_fcbf",
            PredictorKind::Slr => "slr",
            PredictorKind::Ewma => "ewma",
        }
    }

    /// Resolves a stable [`name`](PredictorKind::name) back to its kind.
    pub fn from_name(name: &str) -> Option<PredictorKind> {
        PredictorKind::ALL.into_iter().find(|kind| kind.name() == name)
    }

    /// The built-in [`PredictorFactory`] this variant constructs. `mlr` is
    /// captured for the [`PredictorKind::MlrFcbf`] configuration and ignored
    /// by the baselines.
    pub fn factory(self, mlr: MlrConfig) -> Box<dyn PredictorFactory> {
        match self {
            PredictorKind::MlrFcbf => {
                Box::new(move || Box::new(MlrPredictor::new(mlr)) as Box<dyn Predictor>)
            }
            PredictorKind::RobustMlrFcbf => Box::new(move || {
                let config = RobustMlrConfig { mlr, ..RobustMlrConfig::default() };
                Box::new(RobustMlrPredictor::new(config)) as Box<dyn Predictor>
            }),
            PredictorKind::Slr => {
                Box::new(|| Box::new(SlrPredictor::on_packets()) as Box<dyn Predictor>)
            }
            PredictorKind::Ewma => {
                Box::new(|| Box::new(EwmaPredictor::default()) as Box<dyn Predictor>)
            }
        }
    }
}

/// Policing of custom-load-shedding queries (Section 6.1.1).
#[derive(Debug, Clone, Copy)]
pub struct EnforcementConfig {
    /// Overuse factor above which a batch counts as a violation
    /// (measured cycles > expected cycles × (1 + tolerance)).
    pub tolerance: f64,
    /// Consecutive violations before the query is penalized (disabled).
    pub max_violations: u32,
    /// Number of bins a penalized query stays disabled.
    pub penalty_bins: u32,
}

impl Default for EnforcementConfig {
    fn default() -> Self {
        Self { tolerance: 0.25, max_violations: 5, penalty_bins: 50 }
    }
}

/// Configuration of the monitoring system.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Cycles available per time bin (the paper's 3 GHz CPU and 100 ms bins
    /// give 3×10⁸; experiments usually derive this from a target overload
    /// factor instead).
    pub capacity_cycles_per_bin: f64,
    /// Capture buffer size expressed in time bins of backlog the system can
    /// accumulate before uncontrolled drops start (DAG buffer of the paper).
    pub buffer_capacity_bins: f64,
    /// Fixed platform overhead per bin not related to query processing
    /// (capture, memory and storage management).
    pub platform_overhead_cycles: f64,
    /// Duration of a time bin in microseconds.
    pub time_bin_us: u64,
    /// Duration of a measurement interval in microseconds.
    pub measurement_interval_us: u64,
    /// Load shedding strategy.
    pub strategy: Strategy,
    /// Predictor used by the predictive strategy.
    pub predictor: PredictorKind,
    /// MLR configuration (history length, FCBF threshold).
    pub mlr: MlrConfig,
    /// EWMA weight used to smooth the prediction error and the shedding
    /// overhead (Algorithm 1 uses 0.9).
    pub ewma_alpha: f64,
    /// Enables the slow-start-like buffer discovery of Section 4.1.
    pub buffer_discovery: bool,
    /// Measurement noise: multiplicative jitter standard deviation.
    pub noise_jitter: f64,
    /// Measurement noise: probability of a context-switch outlier per batch.
    pub noise_outlier_probability: f64,
    /// Measurement noise: cycles added by an outlier.
    pub noise_outlier_cycles: u64,
    /// Enforcement policy for custom load shedding queries.
    pub enforcement: EnforcementConfig,
    /// Minimum sampling rate floor used by the reactive strategy.
    pub reactive_min_rate: f64,
    /// Seed for sampling hash functions and noise.
    pub seed: u64,
    /// Workers the execution plane dispatches the per-bin query tail to.
    /// 1 (the default) runs everything inline on the calling thread — the
    /// historical sequential path; any value produces bit-identical output
    /// (see DESIGN.md, "Execution plane"). The default honours the
    /// `NETSHED_THREADS` environment variable when it holds a valid count.
    pub workers: usize,
    /// Shard threads a [`ShardedMonitor`](crate::ShardedMonitor) executes
    /// its virtual lanes on. Like `workers`, a pure wall-clock knob: lane
    /// `i` runs on shard `i % shards`, and any value produces bit-identical
    /// output (see DESIGN.md, "Shard plane"). Ignored by a plain
    /// [`Monitor`](crate::Monitor). The default honours the
    /// `NETSHED_SHARDS` environment variable when it holds a valid count.
    pub shards: usize,
    /// Virtual lanes of a [`ShardedMonitor`](crate::ShardedMonitor): the
    /// fixed, state-owning partition of flow space (each lane owns a full
    /// monitor — predictor, capture buffer, policy state). Changing the lane
    /// count changes the partition and therefore the output stream, like
    /// changing the seed — it is configuration, not a wall-clock knob.
    pub shard_lanes: usize,
}

/// Default number of virtual lanes of a sharded monitor: enough to spread
/// load over the shard counts CI pins ({1, 2, 4}) without fragmenting
/// per-lane predictor history.
pub const DEFAULT_SHARD_LANES: usize = 4;

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            capacity_cycles_per_bin: 3.0e8,
            buffer_capacity_bins: 2.0,
            platform_overhead_cycles: 1.0e4,
            time_bin_us: netshed_trace::DEFAULT_TIME_BIN_US,
            measurement_interval_us: netshed_trace::DEFAULT_MEASUREMENT_INTERVAL_US,
            strategy: Strategy::Predictive(AllocationPolicy::EqualRates),
            predictor: PredictorKind::MlrFcbf,
            mlr: MlrConfig::default(),
            ewma_alpha: 0.9,
            buffer_discovery: true,
            noise_jitter: 0.02,
            noise_outlier_probability: 0.005,
            noise_outlier_cycles: 200_000,
            enforcement: EnforcementConfig::default(),
            reactive_min_rate: 0.05,
            seed: 1,
            workers: crate::exec::workers_from_env(),
            shards: crate::exec::shards_from_env(),
            shard_lanes: DEFAULT_SHARD_LANES,
        }
    }
}

impl MonitorConfig {
    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the capacity in cycles per bin.
    pub fn with_capacity(mut self, cycles_per_bin: f64) -> Self {
        self.capacity_cycles_per_bin = cycles_per_bin;
        self
    }

    /// Sets the predictor kind.
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution-plane worker count (1 = sequential).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the shard-thread count of a sharded monitor (1 = all lanes run
    /// on the calling thread).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the virtual-lane count of a sharded monitor (the state-owning
    /// flow partition; changing it changes the output stream).
    pub fn with_shard_lanes(mut self, lanes: usize) -> Self {
        self.shard_lanes = lanes;
        self
    }

    /// Disables measurement noise (useful for deterministic tests).
    pub fn without_noise(mut self) -> Self {
        self.noise_jitter = 0.0;
        self.noise_outlier_probability = 0.0;
        self
    }

    /// Number of time bins per measurement interval.
    pub fn bins_per_interval(&self) -> u64 {
        (self.measurement_interval_us / self.time_bin_us).max(1)
    }

    /// Checks every field against its valid domain.
    ///
    /// [`MonitorBuilder`](crate::MonitorBuilder) calls this before
    /// constructing a monitor; configurations assembled by hand can be
    /// checked explicitly with the same rules.
    pub fn validate(&self) -> Result<(), NetshedError> {
        fn invalid(message: impl Into<String>) -> Result<(), NetshedError> {
            Err(NetshedError::InvalidConfig(message.into()))
        }

        if !self.capacity_cycles_per_bin.is_finite() || self.capacity_cycles_per_bin <= 0.0 {
            return invalid(format!(
                "capacity_cycles_per_bin must be positive and finite, got {}",
                self.capacity_cycles_per_bin
            ));
        }
        if !self.buffer_capacity_bins.is_finite() || self.buffer_capacity_bins < 0.0 {
            return invalid(format!(
                "buffer_capacity_bins must be non-negative and finite, got {}",
                self.buffer_capacity_bins
            ));
        }
        if !self.platform_overhead_cycles.is_finite() || self.platform_overhead_cycles < 0.0 {
            return invalid(format!(
                "platform_overhead_cycles must be non-negative and finite, got {}",
                self.platform_overhead_cycles
            ));
        }
        if self.time_bin_us == 0 {
            return invalid("time_bin_us must be positive");
        }
        if self.measurement_interval_us < self.time_bin_us {
            return invalid(format!(
                "measurement_interval_us ({}) must be at least one time bin ({} us)",
                self.measurement_interval_us, self.time_bin_us
            ));
        }
        if !self.ewma_alpha.is_finite() || !(0.0..=1.0).contains(&self.ewma_alpha) {
            return invalid(format!("ewma_alpha must be in [0, 1], got {}", self.ewma_alpha));
        }
        if !self.reactive_min_rate.is_finite() || !(0.0..=1.0).contains(&self.reactive_min_rate) {
            return invalid(format!(
                "reactive_min_rate must be in [0, 1], got {}",
                self.reactive_min_rate
            ));
        }
        if !self.noise_jitter.is_finite() || self.noise_jitter < 0.0 {
            return invalid(format!(
                "noise_jitter must be non-negative, got {}",
                self.noise_jitter
            ));
        }
        if !self.noise_outlier_probability.is_finite()
            || !(0.0..=1.0).contains(&self.noise_outlier_probability)
        {
            return invalid(format!(
                "noise_outlier_probability must be in [0, 1], got {}",
                self.noise_outlier_probability
            ));
        }
        if !self.enforcement.tolerance.is_finite() || self.enforcement.tolerance < 0.0 {
            return invalid(format!(
                "enforcement.tolerance must be non-negative, got {}",
                self.enforcement.tolerance
            ));
        }
        if self.enforcement.max_violations == 0 {
            return invalid("enforcement.max_violations must be at least 1");
        }
        if !(1..=crate::exec::MAX_WORKERS).contains(&self.workers) {
            return invalid(format!(
                "workers must be in [1, {}], got {}",
                crate::exec::MAX_WORKERS,
                self.workers
            ));
        }
        if !(1..=crate::exec::MAX_WORKERS).contains(&self.shards) {
            return invalid(format!(
                "shards must be in [1, {}], got {}",
                crate::exec::MAX_WORKERS,
                self.shards
            ));
        }
        if !(1..=crate::exec::MAX_WORKERS).contains(&self.shard_lanes) {
            return invalid(format!(
                "shard_lanes must be in [1, {}], got {}",
                crate::exec::MAX_WORKERS,
                self.shard_lanes
            ));
        }
        if self.capacity_cycles_per_bin <= self.platform_overhead_cycles {
            return Err(NetshedError::CapacityUnderflow {
                capacity: self.capacity_cycles_per_bin,
                required: self.platform_overhead_cycles,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::NoShedding.name(), "no_lshed");
        assert_eq!(Strategy::Predictive(AllocationPolicy::MmfsPkt).name(), "mmfs_pkt");
        assert_eq!(Strategy::Reactive(AllocationPolicy::EqualRates).name(), "reactive");
    }

    #[test]
    fn all_seven_composed_names_match_the_historical_strings() {
        let expected = [
            (Strategy::NoShedding, "no_lshed"),
            (Strategy::Reactive(AllocationPolicy::EqualRates), "reactive"),
            (Strategy::Reactive(AllocationPolicy::MmfsCpu), "reactive_mmfs_cpu"),
            (Strategy::Reactive(AllocationPolicy::MmfsPkt), "reactive_mmfs_pkt"),
            (Strategy::Predictive(AllocationPolicy::EqualRates), "eq_srates"),
            (Strategy::Predictive(AllocationPolicy::MmfsCpu), "mmfs_cpu"),
            (Strategy::Predictive(AllocationPolicy::MmfsPkt), "mmfs_pkt"),
        ];
        for (strategy, name) in expected {
            assert_eq!(strategy.name(), name);
            assert_eq!(strategy.control_policy().name(), name);
        }
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let config = MonitorConfig::default();
        assert_eq!(config.capacity_cycles_per_bin, 3.0e8);
        assert_eq!(config.bins_per_interval(), 10);
    }

    #[test]
    fn builder_methods_apply() {
        let config = MonitorConfig::default()
            .with_capacity(1e6)
            .with_strategy(Strategy::NoShedding)
            .with_seed(9)
            .without_noise();
        assert_eq!(config.capacity_cycles_per_bin, 1e6);
        assert_eq!(config.strategy, Strategy::NoShedding);
        assert_eq!(config.noise_jitter, 0.0);
        assert_eq!(config.seed, 9);
    }
}
