//! The parallel execution plane: scoped worker dispatch for the per-bin
//! query tail.
//!
//! After the control-plane decision, the per-query work of a bin — sampled
//! feature re-extraction, `Query::process_batch`, noise application and
//! `Predictor::observe`, plus the uncharged shadow-twin measurements of
//! oracle-style policies — is embarrassingly parallel: every task touches
//! only its own query's state plus shared read-only data (the post-drop
//! [`BatchView`](netshed_trace::BatchView), the full-batch feature vector).
//! [`run_tasks_into`] fans those tasks out over a scoped pool of
//! `std::thread` workers and leaves per-task wall-clock timings in a
//! caller-owned [`TaskTimings`] scratch (so steady-state dispatch allocates
//! nothing); the monitor merges the results back in registration order, so
//! the output stream is bit-identical whatever the worker count (see
//! DESIGN.md, "Execution plane").
//!
//! Everything order-sensitive — capture-buffer accounting, full-batch
//! feature extraction, predictions, the policy decision, the RNG-driven
//! construction of each query's shed view and the measurement-noise draws —
//! stays on the caller's thread; a task receives its inputs (including its
//! pre-drawn [`NoiseDraw`](netshed_queries::NoiseDraw)) fully determined.
//!
//! With `workers == 1` (the default) no thread is ever spawned: tasks run
//! inline on the caller's thread in task order, which *is* the historical
//! sequential path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Highest accepted worker count (a sanity cap, not a tuning hint).
pub const MAX_WORKERS: usize = 256;

/// Worker counts the scaling benchmark reports projected speedups at (a
/// display grid; [`ExecStats::projected_speedup`] itself answers any count
/// up to [`MAX_SIMULATED_WORKERS`]).
pub const SIMULATED_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Highest worker count [`ExecStats::projected_speedup`] can answer for:
/// per-bin makespans are accumulated for every count in
/// `1..=MAX_SIMULATED_WORKERS`.
pub const MAX_SIMULATED_WORKERS: usize = 64;

/// Reusable per-dispatch timing scratch: the buffers [`run_tasks_into`]
/// writes per-task nanoseconds into.
///
/// The caller owns the scratch across bins, so a steady-state bin loop
/// re-dispatches without allocating — both the plain nanosecond buffer and
/// the atomic slots of the threaded path keep their capacity between
/// dispatches.
#[derive(Debug, Default)]
pub(crate) struct TaskTimings {
    ns: Vec<u64>,
    atomic: Vec<AtomicU64>,
}

impl TaskTimings {
    /// Creates an empty scratch (first dispatches grow it to steady size).
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Per-task wall-clock nanoseconds of the most recent dispatch, indexed
    /// like its `tasks` slice.
    pub(crate) fn ns(&self) -> &[u64] {
        &self.ns
    }

    /// Forgets the last dispatch without releasing capacity — for callers
    /// whose dispatch is conditional, so a skipped dispatch does not replay
    /// the previous bin's timings.
    pub(crate) fn clear(&mut self) {
        self.ns.clear();
    }
}

/// Runs every task exactly once across `workers` scoped threads, leaving the
/// per-task wall-clock nanoseconds in `timings` (indexed like `tasks`).
///
/// Tasks are pulled from a shared queue in order, so an expensive task never
/// serialises the cheap ones behind it. The call returns when all tasks have
/// completed. With `workers <= 1` (or fewer than two tasks) the tasks run
/// inline on the caller's thread — no thread is spawned, no synchronisation
/// is touched.
///
/// Determinism: the function imposes no ordering on *effects* because each
/// task may only touch state it exclusively owns (`&mut T`) plus `Sync`
/// shared inputs; result placement is by task index, so callers merging in
/// index order observe the same stream regardless of `workers`.
pub(crate) fn run_tasks_into<T, F>(
    workers: usize,
    tasks: &mut [T],
    run: F,
    timings: &mut TaskTimings,
) where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    timings.ns.clear();
    let worker_count = workers.clamp(1, MAX_WORKERS).min(tasks.len());
    if worker_count <= 1 {
        for task in tasks.iter_mut() {
            let start = Instant::now();
            run(task);
            timings.ns.push(start.elapsed().as_nanos() as u64);
        }
        return;
    }

    // Reuse the atomic slots across dispatches; only growth past the
    // steady-state task count allocates.
    for slot in timings.atomic.iter_mut().take(tasks.len()) {
        *slot.get_mut() = 0;
    }
    if timings.atomic.len() < tasks.len() {
        timings.atomic.resize_with(tasks.len(), || AtomicU64::new(0));
    }
    let task_ns = &timings.atomic[..tasks.len()];
    let queue = Mutex::new(tasks.iter_mut().enumerate());
    let drain = || loop {
        // Hold the queue lock only for the pop, never across a task.
        // lint:allow(no-unwrap): a poisoned queue means a worker panicked mid-task; propagating the panic is the only sound continuation
        let next = queue.lock().expect("task queue poisoned").next();
        let Some((index, task)) = next else { break };
        let start = Instant::now();
        run(task);
        task_ns[index].store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    };
    std::thread::scope(|scope| {
        // The caller participates, so a dispatch spawns only `workers - 1`
        // threads — at four workers that is three spawns, not four, and the
        // pool is never idle waiting for the calling thread.
        // `drain` captures only shared references, so it is `Copy` and each
        // spawn gets its own handle onto the same queue.
        for _ in 1..worker_count {
            scope.spawn(drain);
        }
        drain();
    });
    timings.ns.extend(task_ns.iter().map(|slot| slot.load(Ordering::Relaxed)));
}

/// One-shot convenience over [`run_tasks_into`]: allocates a fresh scratch
/// and returns the timing vector. Kept for callers outside the steady-state
/// bin loop (and for tests); the monitor itself dispatches through its owned
/// [`TaskTimings`] scratches.
#[cfg(test)]
pub(crate) fn run_tasks<T, F>(workers: usize, tasks: &mut [T], run: F) -> Vec<u64>
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let mut timings = TaskTimings::new();
    run_tasks_into(workers, tasks, run, &mut timings);
    timings.ns
}

/// Greedy list-scheduling makespan: assigns each task, in queue order, to the
/// worker that frees up first — the same discipline the shared-queue pool
/// follows — and returns the busiest worker's total nanoseconds.
pub fn simulated_makespan(task_ns: &[u64], workers: usize) -> u64 {
    let mut loads = vec![0u64; workers.max(1)];
    for &ns in task_ns {
        // lint:allow(no-unwrap): loads has workers.max(1) elements, so min() always exists
        let earliest = loads.iter_mut().min().expect("at least one worker");
        *earliest += ns;
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Cumulative execution-plane telemetry of a [`Monitor`](crate::Monitor).
///
/// Every processed bin contributes its sequential nanoseconds (everything on
/// the caller's thread) and its dispatched task nanoseconds; from the
/// per-task durations the plane also accumulates simulated makespans at
/// every worker count in `1..=`[`MAX_SIMULATED_WORKERS`].
/// [`ExecStats::projected_speedup`] turns those into the throughput scaling
/// an `N`-core host would see — measured task costs, modelled schedule —
/// which is what the scaling benchmark reports on hosts with fewer cores
/// than workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecStats {
    /// Bins processed.
    pub bins: u64,
    /// Nanoseconds spent on the caller's thread (admission, extraction,
    /// prediction, decision, shed-view construction, merge).
    pub sequential_ns: u64,
    /// Total nanoseconds of dispatched tasks (summed over tasks).
    pub task_ns: u64,
    /// Tasks dispatched to the execution plane.
    pub dispatched_tasks: u64,
    /// Simulated makespans; slot `i` holds the accumulated makespan at
    /// `i + 1` workers.
    makespan_ns: [u64; MAX_SIMULATED_WORKERS],
}

impl Default for ExecStats {
    fn default() -> Self {
        Self {
            bins: 0,
            sequential_ns: 0,
            task_ns: 0,
            dispatched_tasks: 0,
            makespan_ns: [0; MAX_SIMULATED_WORKERS],
        }
    }
}

impl ExecStats {
    /// Folds one bin: its sequential time and the task durations of each of
    /// its dispatches (a bin has one dispatch for the query tail, plus one
    /// for shadow twins under oracle-style policies).
    pub(crate) fn fold_bin(&mut self, sequential_ns: u64, dispatches: &[&[u64]]) {
        self.bins += 1;
        self.sequential_ns += sequential_ns;
        for task_ns in dispatches {
            self.dispatched_tasks += task_ns.len() as u64;
            self.task_ns += task_ns.iter().sum::<u64>();
            for (slot, workers) in self.makespan_ns.iter_mut().zip(1..) {
                *slot += simulated_makespan(task_ns, workers);
            }
        }
    }

    /// Fraction of the total per-bin time spent in dispatchable tasks — the
    /// Amdahl ceiling of the execution plane.
    pub fn parallel_fraction(&self) -> f64 {
        let total = self.sequential_ns + self.task_ns;
        if total == 0 {
            return 0.0;
        }
        self.task_ns as f64 / total as f64
    }

    /// Projected throughput speedup at `workers` workers relative to one,
    /// from the measured task costs under the pool's list schedule. Answers
    /// any count in `1..=`[`MAX_SIMULATED_WORKERS`] — not just the
    /// [`SIMULATED_WORKERS`] display grid; returns `None` beyond the bound
    /// or before any bin was processed.
    pub fn projected_speedup(&self, workers: usize) -> Option<f64> {
        if workers == 0 || workers > MAX_SIMULATED_WORKERS {
            return None;
        }
        let one = self.sequential_ns + self.makespan_ns[0];
        let at = self.sequential_ns + self.makespan_ns[workers - 1];
        (at > 0).then(|| one as f64 / at as f64)
    }
}

/// Parses the `NETSHED_THREADS` environment override: a worker count in
/// `[1, MAX_WORKERS]`. Unset, empty or out-of-domain values fall back to 1
/// (the sequential path) rather than failing construction, so an exported
/// stray value cannot break unrelated runs — but a *rejected* value is
/// reported once per process on stderr, so a typo'd export no longer
/// silently serialises a production run.
pub(crate) fn workers_from_env() -> usize {
    static DIAGNOSED: std::sync::Once = std::sync::Once::new();
    count_from_env("NETSHED_THREADS", &DIAGNOSED)
}

/// Parses the `NETSHED_SHARDS` environment override: a shard count in
/// `[1, MAX_WORKERS]`, with the same fallback and once-per-process
/// rejection diagnostic as [`workers_from_env`].
pub(crate) fn shards_from_env() -> usize {
    static DIAGNOSED: std::sync::Once = std::sync::Once::new();
    count_from_env("NETSHED_SHARDS", &DIAGNOSED)
}

/// Reads and parses one count-valued environment override, emitting the
/// rejection diagnostic (at most once per process per variable, gated by the
/// caller's `Once`).
fn count_from_env(var: &str, diagnosed: &'static std::sync::Once) -> usize {
    let raw = std::env::var(var).ok();
    let (count, rejected) = parse_count(raw.as_deref());
    if let Some(rejected) = rejected {
        diagnosed.call_once(|| {
            eprintln!(
                "netshed: ignoring invalid {var}={rejected:?} \
                 (expected an integer in 1..={MAX_WORKERS}); falling back to 1"
            );
        });
    }
    count
}

/// The pure parsing rule behind [`workers_from_env`] / [`shards_from_env`]:
/// the effective count, plus — when a present, non-empty value was rejected —
/// the offending raw string for the diagnostic. Unset and empty (after
/// trimming) values are the documented "disabled" spelling and are not
/// flagged.
fn parse_count(raw: Option<&str>) -> (usize, Option<String>) {
    let Some(raw) = raw else {
        return (1, None);
    };
    if raw.trim().is_empty() {
        return (1, None);
    }
    match raw.trim().parse::<usize>().ok().filter(|count| (1..=MAX_WORKERS).contains(count)) {
        Some(count) => (count, None),
        None => (1, Some(raw.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_tasks_runs_every_task_exactly_once_at_any_worker_count() {
        for workers in [1, 2, 4, 9] {
            let mut tasks: Vec<u32> = vec![0; 7];
            let timings = run_tasks(workers, &mut tasks, |task| *task += 1);
            assert_eq!(tasks, vec![1; 7], "workers = {workers}");
            assert_eq!(timings.len(), 7);
        }
    }

    #[test]
    fn run_tasks_handles_empty_and_single_task_sets() {
        let mut none: Vec<u32> = Vec::new();
        assert!(run_tasks(4, &mut none, |_| unreachable!()).is_empty());
        let mut one = vec![10u32];
        run_tasks(4, &mut one, |task| *task *= 2);
        assert_eq!(one, vec![20]);
    }

    #[test]
    fn parallel_workers_really_run_concurrently() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        // Two tasks that can only finish if two workers run them at once.
        let barrier = Barrier::new(2);
        let hits = AtomicUsize::new(0);
        let mut tasks = vec![(); 2];
        run_tasks(2, &mut tasks, |()| {
            barrier.wait();
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn simulated_makespan_models_list_scheduling() {
        // Tasks 6,4,3,3 on two workers: 6|4+3 → second worker gets 4 then 3,
        // first gets 6 then 3 → loads 9 and 7.
        assert_eq!(simulated_makespan(&[6, 4, 3, 3], 2), 9);
        assert_eq!(simulated_makespan(&[6, 4, 3, 3], 1), 16);
        assert_eq!(simulated_makespan(&[6, 4, 3, 3], 4), 6);
        assert_eq!(simulated_makespan(&[], 4), 0);
    }

    #[test]
    fn exec_stats_accumulate_and_project() {
        let mut stats = ExecStats::default();
        stats.fold_bin(100, &[&[50, 50, 50, 50]]);
        assert_eq!(stats.bins, 1);
        assert_eq!(stats.sequential_ns, 100);
        assert_eq!(stats.task_ns, 200);
        assert_eq!(stats.dispatched_tasks, 4);
        assert!((stats.parallel_fraction() - 200.0 / 300.0).abs() < 1e-12);
        // 1 worker: 100 + 200 = 300; 4 workers: 100 + 50 = 150 → 2×.
        assert_eq!(stats.projected_speedup(1), Some(1.0));
        assert_eq!(stats.projected_speedup(4), Some(2.0));
        // Off the display grid: 3 workers list-schedule 4×50 as 100|50|50 →
        // 100 + 100 = 200 → 1.5×.
        assert_eq!(stats.projected_speedup(3), Some(1.5));
        // Beyond the task count the makespan floors at one task.
        assert_eq!(stats.projected_speedup(MAX_SIMULATED_WORKERS), Some(2.0));
        // Outside the simulated bound (or nonsensical) stays unanswerable.
        assert_eq!(stats.projected_speedup(0), None);
        assert_eq!(stats.projected_speedup(MAX_SIMULATED_WORKERS + 1), None);
    }

    #[test]
    fn projected_speedup_answers_every_simulated_count() {
        let mut stats = ExecStats::default();
        stats.fold_bin(0, &[&[30, 20, 10, 10, 10]]);
        let mut previous = 0.0;
        for workers in 1..=MAX_SIMULATED_WORKERS {
            let speedup =
                stats.projected_speedup(workers).expect("every count up to the bound answers");
            assert!(speedup >= previous - 1e-12, "speedup is monotone in workers");
            previous = speedup;
        }
        assert!(ExecStats::default().projected_speedup(2).is_none(), "no bins yet");
    }

    #[test]
    fn env_override_accepts_counts_and_rejects_junk() {
        // Accepted values parse cleanly, with no diagnostic.
        assert_eq!(parse_count(None), (1, None), "unset falls back to sequential");
        assert_eq!(parse_count(Some("4")), (4, None));
        assert_eq!(parse_count(Some("  8 ")), (8, None), "surrounding whitespace is tolerated");
        assert_eq!(parse_count(Some(&MAX_WORKERS.to_string())), (MAX_WORKERS, None));
        // Empty (or blank) is the documented "disabled" spelling: fall back
        // silently, exactly like unset.
        assert_eq!(parse_count(Some("")), (1, None));
        assert_eq!(parse_count(Some("   ")), (1, None));
        // Junk falls back to 1 *and* surfaces the rejected value for the
        // once-per-process diagnostic.
        for junk in ["0", "-3", "1.5", "four", "many", &format!("{}", MAX_WORKERS + 1)] {
            assert_eq!(
                parse_count(Some(junk)),
                (1, Some(junk.to_string())),
                "junk value {junk:?} must fall back to 1 and be diagnosed"
            );
        }
        // The diagnostic echoes the raw value, not the trimmed one.
        assert_eq!(parse_count(Some(" zero ")), (1, Some(" zero ".to_string())));
    }
}
