//! Capture buffer model (the DAG card buffers of the testbed).
//!
//! The real system runs against wall-clock time: if processing a batch takes
//! longer than a time bin, the capture card's memory buffers absorb the
//! backlog; once they fill up, packets are dropped without control
//! (the "DAG drops" of Figure 4.2). This model tracks the backlog in cycles:
//! every bin adds the cycles actually spent and removes one bin's worth of
//! capacity; when the backlog exceeds the buffer size, the overflow fraction
//! of the next incoming batch is dropped before the system ever sees it.

/// Capture-side backlog and drop model.
#[derive(Debug, Clone)]
pub struct CaptureBuffer {
    /// Cycles of backlog currently queued.
    backlog_cycles: f64,
    /// Maximum backlog the buffer can absorb, in cycles.
    capacity_cycles: f64,
    /// Cycles of capacity per time bin (used to convert backlog to "bins of
    /// delay").
    cycles_per_bin: f64,
    /// Total packets dropped because the buffer was full.
    dropped_packets: u64,
}

impl CaptureBuffer {
    /// Creates a buffer able to absorb `capacity_bins` time bins of backlog.
    pub fn new(cycles_per_bin: f64, capacity_bins: f64) -> Self {
        Self {
            backlog_cycles: 0.0,
            capacity_cycles: (cycles_per_bin * capacity_bins).max(0.0),
            cycles_per_bin: cycles_per_bin.max(1.0),
            dropped_packets: 0,
        }
    }

    /// Current backlog expressed in time bins of delay.
    pub fn delay_bins(&self) -> f64 {
        self.backlog_cycles / self.cycles_per_bin
    }

    /// Current backlog in cycles (the `delay` of Algorithm 1).
    pub fn delay_cycles(&self) -> f64 {
        self.backlog_cycles
    }

    /// Buffer occupation as a fraction of its capacity (0..1).
    pub fn occupation(&self) -> f64 {
        if self.capacity_cycles <= 0.0 {
            return if self.backlog_cycles > 0.0 { 1.0 } else { 0.0 };
        }
        (self.backlog_cycles / self.capacity_cycles).clamp(0.0, 1.0)
    }

    /// Total packets dropped so far because of buffer overflow.
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Returns the fraction of the incoming batch that must be dropped given
    /// the current backlog (0 when the buffer still has room), and accounts
    /// the drops.
    ///
    /// `incoming_packets` is the size of the arriving batch.
    pub fn admit(&mut self, incoming_packets: u64) -> f64 {
        if self.backlog_cycles <= self.capacity_cycles {
            return 0.0;
        }
        // The buffer is over capacity: the excess backlog (in bins) maps to a
        // fraction of the incoming traffic that cannot be stored.
        let excess_bins = (self.backlog_cycles - self.capacity_cycles) / self.cycles_per_bin;
        let drop_fraction = excess_bins.clamp(0.0, 1.0);
        self.dropped_packets += (incoming_packets as f64 * drop_fraction).round() as u64;
        drop_fraction
    }

    /// Accounts the cycles actually spent on a bin and drains one bin of
    /// capacity from the backlog.
    pub fn account_bin(&mut self, cycles_spent: f64) {
        self.backlog_cycles = (self.backlog_cycles + cycles_spent - self.cycles_per_bin).max(0.0);
    }

    /// Resets the backlog (used when a run is restarted).
    pub fn reset(&mut self) {
        self.backlog_cycles = 0.0;
        self.dropped_packets = 0;
    }

    /// Serializes the buffer's mutable state (backlog and drop counter); the
    /// geometry is derived from the monitor configuration and not stored.
    pub fn save_state(&self, writer: &mut netshed_sketch::StateWriter) {
        writer.f64(self.backlog_cycles);
        writer.u64(self.dropped_packets);
    }

    /// Restores state written by [`CaptureBuffer::save_state`] into a buffer
    /// built from the same configuration.
    pub fn load_state(
        &mut self,
        reader: &mut netshed_sketch::StateReader<'_>,
    ) -> Result<(), netshed_sketch::StateError> {
        self.backlog_cycles = reader.f64()?;
        self.dropped_packets = reader.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_drops_while_keeping_up() {
        let mut buffer = CaptureBuffer::new(1000.0, 2.0);
        for _ in 0..100 {
            assert_eq!(buffer.admit(500), 0.0);
            buffer.account_bin(900.0);
        }
        assert_eq!(buffer.dropped_packets(), 0);
        assert_eq!(buffer.delay_cycles(), 0.0);
    }

    #[test]
    fn sustained_overload_fills_the_buffer_then_drops() {
        let mut buffer = CaptureBuffer::new(1000.0, 2.0);
        let mut saw_drop = false;
        for _ in 0..20 {
            let fraction = buffer.admit(1000);
            if fraction > 0.0 {
                saw_drop = true;
            }
            // Spending 1.5 bins of cycles per bin: backlog grows 500/bin.
            buffer.account_bin(1500.0);
        }
        assert!(saw_drop, "sustained overload must eventually drop packets");
        assert!(buffer.dropped_packets() > 0);
        assert!(buffer.occupation() > 0.9);
    }

    #[test]
    fn short_burst_is_absorbed_without_drops() {
        let mut buffer = CaptureBuffer::new(1000.0, 3.0);
        // One expensive bin followed by idle bins.
        assert_eq!(buffer.admit(100), 0.0);
        buffer.account_bin(2500.0);
        for _ in 0..5 {
            assert_eq!(buffer.admit(100), 0.0, "burst within buffer capacity must not drop");
            buffer.account_bin(100.0);
        }
        assert_eq!(buffer.dropped_packets(), 0);
        assert_eq!(buffer.delay_cycles(), 0.0);
    }

    #[test]
    fn delay_reporting_matches_backlog() {
        let mut buffer = CaptureBuffer::new(1000.0, 10.0);
        buffer.account_bin(3000.0);
        assert!((buffer.delay_bins() - 2.0).abs() < 1e-9);
        assert!((buffer.delay_cycles() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut buffer = CaptureBuffer::new(1000.0, 1.0);
        buffer.account_bin(5000.0);
        buffer.admit(100);
        buffer.reset();
        assert_eq!(buffer.delay_cycles(), 0.0);
        assert_eq!(buffer.dropped_packets(), 0);
    }
}
