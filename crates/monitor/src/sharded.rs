//! The shard plane: a flow-sharded monitor fleet behind one front end, with
//! a cross-shard capacity coordinator.
//!
//! A [`ShardedMonitor`] statically partitions flow space into a fixed number
//! of *virtual lanes* (`shard_lanes`, RSS-style indirection), each lane a
//! full independent [`Monitor`] — its own predictor, capture buffer and
//! policy state. The front end routes each packet by its symmetric host-pair
//! [`shard_key`](netshed_trace::shard_key) (`lane = key % lanes`), so every
//! flow — and both directions of every conversation — lands on exactly one
//! lane. The `shards` knob is a pure wall-clock knob like `workers`: it only
//! sets how many threads the fixed lanes are executed on, so the output
//! stream is bit-identical at any shards×workers combination (see DESIGN.md,
//! "Shard plane"). Changing `shard_lanes` changes the state-owning partition
//! and therefore the output, like changing the seed — it is configuration.
//!
//! Per global bin the *coordinator* redistributes the global cycle budget
//! over the lanes through the same [`AllocationStrategy`] machinery that
//! arbitrates queries within a monitor (Section 5.2 lifted from queries to
//! shards): each lane reports its previous bin's predicted cycles as its
//! demand, the allocator grants max-min fair budgets out of the
//! discretionary pool, and unclaimed headroom is returned equally. A DDoS
//! concentrated on one lane therefore borrows the idle lanes' headroom —
//! while the §5.3 allocation game bounds what a greedy lane can extract.
//!
//! Lanes run in lock step: every lane sees every global bin, non-empty
//! sub-batches through [`Monitor::process_batch`] and empty ones through
//! [`Monitor::advance_empty_bin`], so all lanes close measurement intervals
//! on identical bins and per-interval outputs can be merged query-by-query.

use crate::config::{AllocationPolicy, MonitorConfig, Strategy};
use crate::error::NetshedError;
use crate::exec::{run_tasks_into, ExecStats, TaskTimings};
use crate::monitor::{Monitor, QueryId};
use crate::observer::RunObserver;
use crate::report::{BinRecord, RunSummary};
use netshed_fairness::QueryDemand;
use netshed_queries::{QueryOutput, QuerySpec};
use netshed_sketch::{StateError, StateReader, StateWriter};
use netshed_trace::{Batch, PacketSource};
use std::collections::{BTreeMap, BTreeSet};
// lint:allow(telemetry-clock): wall time feeds ExecStats telemetry only, never a decision
use std::time::Instant;

// Lane monitors cross shard-thread boundaries, so the fleet relies on the
// monitor being `Send`. Compile-time proof:
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Monitor>();
};

/// Fraction of a lane's equal share that is guaranteed to it regardless of
/// demand (the coordinator's liveness floor): an idle lane keeps enough
/// budget to ramp back up, and no allocation outcome can starve a lane below
/// its platform overhead.
const MIN_LANE_SHARE: f64 = 0.05;

/// A fleet of flow-sharded monitors behind one deterministic front end.
///
/// Construct through [`MonitorBuilder::build_sharded`]
/// (crate::MonitorBuilder::build_sharded) or [`ShardedMonitor::new`]; drive
/// it like a [`Monitor`] — [`ShardedMonitor::run`] over a source, or
/// [`ShardedMonitor::process_bin`] per global bin.
pub struct ShardedMonitor {
    /// The *global* configuration (undivided capacity). Per-lane budgets are
    /// coordinator state, never reflected here — checkpoint cross-checks
    /// compare against this config bit-for-bit.
    config: MonitorConfig,
    /// The fixed virtual lanes, each a full monitor over its flow partition.
    lanes: Vec<Monitor>,
    /// Cross-shard allocator (the configured strategy's allocation policy;
    /// max-min CPU fairness when the strategy has none).
    allocator: Box<dyn netshed_fairness::AllocationStrategy>,
    /// Each lane's current per-bin cycle budget (coordinator output).
    lane_capacity: Vec<f64>,
    /// Each lane's reported demand: its previous bin's predicted cycles
    /// (0 before the first bin and after a bin the lane sat idle).
    lane_demand: Vec<f64>,
    /// Shard-level execution telemetry (lane dispatch, not the per-lane
    /// query tails — those accumulate inside each lane's own stats).
    exec_stats: ExecStats,
    /// Reusable lane-dispatch timing scratch.
    timings: TaskTimings,
}

/// What one lane produced for one global bin.
enum LaneOutcome {
    /// The lane processed a non-empty sub-batch.
    Processed(Box<BinRecord>),
    /// The lane's sub-batch was empty; the interval clock still advanced and
    /// may have closed an interval.
    Empty(Option<Vec<(String, QueryOutput)>>),
}

/// One lane's work item for the shard-thread dispatch.
struct LaneTask<'a> {
    monitor: &'a mut Monitor,
    batch: Batch,
    outcome: Option<Result<LaneOutcome, NetshedError>>,
}

impl ShardedMonitor {
    /// Builds a fleet from a validated global configuration: `shard_lanes`
    /// monitors, each starting with an equal share of the capacity (compute
    /// budget *and* capture-buffer depth — buffer memory models per-lane
    /// NIC-drain capacity and is not redistributed by the coordinator). The
    /// per-bin platform overhead is split the same way, so the fleet pays
    /// the same total fixed cost as the solo monitor — and any configuration
    /// a solo monitor accepts, the fleet accepts too.
    pub fn new(config: MonitorConfig) -> Result<Self, NetshedError> {
        config.validate()?;
        let lanes_count = config.shard_lanes;
        let share = config.capacity_cycles_per_bin / lanes_count as f64;
        let mut lanes = Vec::with_capacity(lanes_count);
        for lane in 0..lanes_count {
            let mut lane_config = config
                .clone()
                .with_capacity(share)
                // Decorrelate the lanes' sampling hashes and noise streams;
                // the derivation depends only on the lane index, so it is
                // invariant to the shard-thread count.
                .with_seed(config.seed ^ (lane as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            lane_config.platform_overhead_cycles =
                config.platform_overhead_cycles / lanes_count as f64;
            lane_config.validate()?;
            lanes.push(Monitor::new(lane_config));
        }
        let allocator = match config.strategy {
            // NoShedding has no allocation policy of its own; the coordinator
            // still has to split the budget, and max-min CPU fairness is the
            // neutral choice.
            Strategy::NoShedding => AllocationPolicy::MmfsCpu.allocator(),
            Strategy::Reactive(policy) | Strategy::Predictive(policy) => policy.allocator(),
        };
        Ok(Self {
            config,
            lanes,
            allocator,
            lane_capacity: vec![share; lanes_count],
            lane_demand: vec![0.0; lanes_count],
            exec_stats: ExecStats::default(),
            timings: TaskTimings::new(),
        })
    }

    /// The global configuration the fleet was built from (undivided
    /// capacity; coordinator reallocations never leak into it).
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Number of virtual lanes (the fixed state-owning partition).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Number of shard threads the lanes are executed on.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The lanes' current per-bin cycle budgets (coordinator output of the
    /// most recent bin; equal shares before the first).
    pub fn lane_capacities(&self) -> &[f64] {
        &self.lane_capacity
    }

    /// The control policy name of the fleet (all lanes share it).
    pub fn policy_name(&self) -> String {
        self.lanes[0].policy_name()
    }

    /// Swaps every lane's control policy to a built-in [`Strategy`] and
    /// retargets the coordinator's allocator to the strategy's allocation
    /// policy. Each lane gets its own fresh policy instance, which is why
    /// the fleet swaps by [`Strategy`] rather than by boxed policy.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        for lane in &mut self.lanes {
            lane.set_policy(strategy.control_policy());
        }
        self.allocator = match strategy {
            Strategy::NoShedding => AllocationPolicy::MmfsCpu.allocator(),
            Strategy::Reactive(policy) | Strategy::Predictive(policy) => policy.allocator(),
        };
    }

    /// Shard-level execution telemetry: sequential front-end time (split,
    /// coordination, merge) vs dispatched lane time, with projected
    /// speedups over shard threads. Per-lane query-tail telemetry stays in
    /// each lane's own [`Monitor::exec_stats`].
    pub fn exec_stats(&self) -> ExecStats {
        self.exec_stats
    }

    /// Registers a query on every lane under one shared [`QueryId`].
    ///
    /// Lanes assign ids in lock step (same registration history), so the id
    /// is fleet-wide.
    pub fn register(&mut self, spec: &QuerySpec) -> Result<QueryId, NetshedError> {
        let mut id = None;
        for lane in &mut self.lanes {
            let lane_id = lane.register(spec)?;
            debug_assert!(id.is_none_or(|previous| previous == lane_id));
            id = Some(lane_id);
        }
        // lint:allow(no-unwrap): the fleet always has at least one lane (validated config)
        Ok(id.expect("a fleet has at least one lane"))
    }

    /// Deregisters a query from every lane.
    pub fn deregister(&mut self, id: QueryId) -> Result<(), NetshedError> {
        for lane in &mut self.lanes {
            lane.deregister(id)?;
        }
        Ok(())
    }

    /// Query labels in registration order (identical on every lane).
    pub fn query_names(&self) -> Vec<String> {
        self.lanes[0].query_names()
    }

    /// Whether a measurement interval is currently open (lanes advance their
    /// interval clocks in lock step, so one lane answers for the fleet).
    pub fn interval_open(&self) -> bool {
        self.lanes.iter().any(Monitor::interval_open)
    }

    /// Flushes the current measurement interval on every lane and merges the
    /// per-query outputs in registration order.
    pub fn finish_interval(&mut self) -> Vec<(String, QueryOutput)> {
        let per_lane: Vec<Vec<(String, QueryOutput)>> =
            self.lanes.iter_mut().map(Monitor::finish_interval).collect();
        merge_interval_outputs(&per_lane)
    }

    /// The coordinator step: turns the lanes' reported demands into per-bin
    /// budgets for the coming bin and applies them.
    ///
    /// Every lane is guaranteed a liveness floor ([`MIN_LANE_SHARE`] of its
    /// equal share, never below its platform overhead); the discretionary
    /// remainder is granted by the configured [`AllocationStrategy`] against
    /// the reported demands, and whatever the grants leave unclaimed is
    /// returned equally. Inputs (previous-bin records) and the allocator are
    /// deterministic, so the budgets are — and they depend only on lane
    /// state, never on the shard-thread count.
    fn coordinate(&mut self) {
        let lanes = self.lanes.len() as f64;
        let capacity = self.config.capacity_cycles_per_bin;
        // The liveness floor is expressed against *lane* terms: a lane's
        // equal share and its (split) platform overhead.
        let lane_overhead = self.config.platform_overhead_cycles / lanes;
        let floor = (capacity / lanes * MIN_LANE_SHARE).max(lane_overhead * 2.0);
        let pool = (capacity - floor * lanes).max(0.0);
        let demands: Vec<QueryDemand> =
            self.lane_demand.iter().map(|&cycles| QueryDemand::new(cycles, 0.0)).collect();
        let allocations = self.allocator.allocate(&demands, pool);
        let granted: f64 = allocations
            .iter()
            .zip(&demands)
            .map(|(allocation, demand)| allocation.rate() * demand.predicted_cycles)
            .sum();
        let bonus = (pool - granted).max(0.0) / lanes;
        for ((lane, allocation), demand) in self.lanes.iter_mut().zip(&allocations).zip(&demands) {
            let budget = floor + allocation.rate() * demand.predicted_cycles + bonus;
            lane.set_bin_capacity(budget);
        }
        for (slot, lane) in self.lane_capacity.iter_mut().zip(&self.lanes) {
            *slot = lane.config().capacity_cycles_per_bin;
        }
    }

    /// Processes one global (non-empty) bin: coordinate budgets, split the
    /// batch over the lanes, dispatch the lanes over the shard threads,
    /// merge, report.
    ///
    /// The observer sees, in order: `on_batch` with the *global* batch; one
    /// `on_interval` with the lane-merged outputs when this bin closed a
    /// measurement interval; then per lane in lane order `on_decision` and
    /// `on_bin` for every lane whose sub-batch was non-empty. The merge
    /// order is fixed by lane index and registration order, so the stream is
    /// invariant to `shards` and `workers`.
    ///
    /// Returns the per-lane records in lane order (idle lanes contribute
    /// none).
    pub fn process_bin<O>(
        &mut self,
        batch: &Batch,
        observer: &mut O,
    ) -> Result<Vec<BinRecord>, NetshedError>
    where
        O: RunObserver + ?Sized,
    {
        if batch.is_empty() {
            return Err(NetshedError::EmptyBatch { bin_index: batch.bin_index });
        }
        // lint:allow(telemetry-clock): front-end wall time feeds ExecStats only, never a decision
        let sequential_start = Instant::now();
        observer.on_batch(batch);
        self.coordinate();
        let lane_count = self.lanes.len();
        let sub_batches = batch.split_shards(lane_count);
        let mut tasks: Vec<LaneTask<'_>> = self
            .lanes
            .iter_mut()
            .zip(sub_batches)
            .map(|(monitor, batch)| LaneTask { monitor, batch, outcome: None })
            .collect();
        let shards = self.config.shards;
        let sequential_ns = sequential_start.elapsed().as_nanos() as u64;
        run_tasks_into(
            shards,
            &mut tasks,
            |task| {
                task.outcome = Some(if task.batch.is_empty() {
                    Ok(LaneOutcome::Empty(task.monitor.advance_empty_bin(&task.batch)))
                } else {
                    task.monitor
                        .process_batch(&task.batch)
                        .map(|record| LaneOutcome::Processed(Box::new(record)))
                });
            },
            &mut self.timings,
        );
        // lint:allow(telemetry-clock): merge wall time feeds ExecStats only, never a decision
        let merge_start = Instant::now();

        // Collect in lane order; the first lane error (in lane order) wins.
        let mut records: Vec<BinRecord> = Vec::with_capacity(lane_count);
        let mut closed: Vec<Vec<(String, QueryOutput)>> = Vec::new();
        let mut interval_closed = false;
        for (lane, task) in tasks.into_iter().enumerate() {
            // lint:allow(no-unwrap): run_tasks_into runs every task exactly once
            let outcome = task.outcome.expect("lane task ran")?;
            match outcome {
                LaneOutcome::Processed(record) => {
                    // Demand report for the next coordination round.
                    self.lane_demand[lane] = record.predicted_cycles;
                    if let Some(outputs) = &record.interval_outputs {
                        interval_closed = true;
                        closed.push(outputs.clone());
                    }
                    records.push(*record);
                }
                LaneOutcome::Empty(outputs) => {
                    // A lane that sat the bin out reports zero demand (its
                    // budget decays to floor + bonus until it sees traffic).
                    self.lane_demand[lane] = 0.0;
                    if let Some(outputs) = outputs {
                        interval_closed = true;
                        closed.push(outputs);
                    }
                }
            }
        }
        // Lanes advance their interval clocks in lock step, so a bin closes
        // an interval on either every lane or none.
        debug_assert!(!interval_closed || closed.len() == self.lanes.len());

        if interval_closed {
            let merged = merge_interval_outputs(&closed);
            observer.on_interval(&merged);
        }
        for record in &records {
            observer.on_decision(record.bin_index, &record.decision);
        }
        for record in &records {
            observer.on_bin(record);
        }

        let merge_ns = merge_start.elapsed().as_nanos() as u64;
        self.exec_stats.fold_bin(sequential_ns + merge_ns, &[self.timings.ns()]);
        Ok(records)
    }

    /// Drives the fleet over a batch source until exhaustion, reporting
    /// progress to `observer` and returning the fleet-merged [`RunSummary`].
    ///
    /// Mirrors [`Monitor::run`]: globally empty bins are counted and
    /// skipped; after the last batch the final interval is flushed to
    /// `on_interval` and `on_end` receives the summary. Summary semantics
    /// are global: `bins` counts global non-empty bins, `cycles_per_bin`
    /// sums the lanes' cycles per global bin, and every lane's prediction
    /// error contributes one sample.
    pub fn run<S, O>(
        &mut self,
        source: &mut S,
        observer: &mut O,
    ) -> Result<RunSummary, NetshedError>
    where
        S: PacketSource + ?Sized,
        O: RunObserver + ?Sized,
    {
        let mut summary = RunSummary::default();
        while let Some(batch) = source.next_batch() {
            if batch.is_empty() {
                summary.empty_bins += 1;
                continue;
            }
            let records = self.process_bin(&batch, observer)?;
            summary.bins += 1;
            let mut bin_cycles = 0.0;
            for record in &records {
                summary.total_packets += record.incoming_packets;
                summary.total_uncontrolled_drops += record.uncontrolled_drops;
                bin_cycles += record.total_cycles();
                if record.query_cycles > 0.0 {
                    summary
                        .prediction_errors
                        .push((1.0 - record.predicted_cycles / record.query_cycles).abs());
                }
            }
            summary.cycles_per_bin.push(bin_cycles);
        }
        if self.interval_open() {
            let outputs = self.finish_interval();
            observer.on_interval(&outputs);
        }
        observer.on_end(&summary);
        Ok(summary)
    }

    /// Serialises one lane's monitor state (the `shard.{i}` checkpoint
    /// section).
    pub fn save_lane_state(&self, lane: usize, writer: &mut StateWriter) -> Result<(), StateError> {
        self.lanes[lane].save_state(writer)
    }

    /// Restores one lane's monitor state. The coordinator's budgets are
    /// restored separately ([`ShardedMonitor::load_coordinator_state`],
    /// which must run *after* every lane load — a lane load resets the
    /// lane's config capacity to its checkpointed value).
    pub fn load_lane_state(
        &mut self,
        lane: usize,
        reader: &mut StateReader<'_>,
    ) -> Result<(), StateError> {
        self.lanes[lane].load_state(reader)
    }

    /// Serialises the coordinator state (the `sharded` checkpoint section):
    /// lane count, then each lane's current budget and reported demand.
    pub fn save_coordinator_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.u64(self.lanes.len() as u64);
        for (&capacity, &demand) in self.lane_capacity.iter().zip(&self.lane_demand) {
            writer.f64(capacity);
            writer.f64(demand);
        }
        Ok(())
    }

    /// Restores the coordinator state and reapplies each lane's budget.
    pub fn load_coordinator_state(
        &mut self,
        reader: &mut StateReader<'_>,
    ) -> Result<(), StateError> {
        let lanes = reader.u64()? as usize;
        if lanes != self.lanes.len() {
            return Err(StateError::mismatch(
                "sharded.lanes",
                self.lanes.len().to_string(),
                lanes.to_string(),
            ));
        }
        for lane in 0..lanes {
            let capacity = reader.f64()?;
            let demand = reader.f64()?;
            self.lane_capacity[lane] = capacity;
            self.lane_demand[lane] = demand;
            self.lanes[lane].set_bin_capacity(capacity);
        }
        Ok(())
    }
}

impl std::fmt::Debug for ShardedMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMonitor")
            .field("lanes", &self.lanes.len())
            .field("shards", &self.config.shards)
            .field("lane_capacity", &self.lane_capacity)
            .finish_non_exhaustive()
    }
}

/// Merges the lanes' per-interval outputs into one fleet-level output list.
///
/// All lanes share the same registration history, so their output lists are
/// index-aligned; entry `q` merges the lanes' entries `q` in lane order with
/// a per-variant rule: counts and sums add, high watermarks take the
/// maximum, set-valued outputs union, rankings merge then re-rank. The fold
/// order is fixed (lane 0 first), so the result is bit-stable.
fn merge_interval_outputs(per_lane: &[Vec<(String, QueryOutput)>]) -> Vec<(String, QueryOutput)> {
    let Some(first) = per_lane.first() else {
        return Vec::new();
    };
    (0..first.len())
        .map(|q| {
            let label = first[q].0.clone();
            let outputs: Vec<&QueryOutput> = per_lane
                .iter()
                .map(|lane| {
                    debug_assert_eq!(lane[q].0, label, "lanes registered identically");
                    &lane[q].1
                })
                .collect();
            (label, merge_query_outputs(&outputs))
        })
        .collect()
}

/// Merges one query's per-lane outputs (see [`merge_interval_outputs`]).
fn merge_query_outputs(outputs: &[&QueryOutput]) -> QueryOutput {
    // lint:allow(no-unwrap): callers pass one output per lane, never empty
    let first = *outputs.first().expect("at least one lane output");
    match first {
        QueryOutput::Counter { .. } => {
            let (mut packets, mut bytes) = (0.0, 0.0);
            for output in outputs {
                if let QueryOutput::Counter { packets: p, bytes: b } = output {
                    packets += p;
                    bytes += b;
                }
            }
            QueryOutput::Counter { packets, bytes }
        }
        QueryOutput::Application { .. } => {
            let mut per_app: BTreeMap<&'static str, (f64, f64)> = BTreeMap::new();
            for output in outputs {
                if let QueryOutput::Application { per_app: lane } = output {
                    for (&app, &(packets, bytes)) in lane {
                        let entry = per_app.entry(app).or_insert((0.0, 0.0));
                        entry.0 += packets;
                        entry.1 += bytes;
                    }
                }
            }
            QueryOutput::Application { per_app }
        }
        QueryOutput::Flows { .. } => {
            let mut count = 0.0;
            for output in outputs {
                if let QueryOutput::Flows { count: c } = output {
                    count += c;
                }
            }
            // Flows of one host pair stay on one lane (the routing key is
            // the host pair), so lane counts are disjoint and add exactly.
            QueryOutput::Flows { count }
        }
        QueryOutput::HighWatermark { .. } => {
            let mut mbps = 0.0;
            for output in outputs {
                if let QueryOutput::HighWatermark { mbps: m } = output {
                    mbps = if m > &mbps { *m } else { mbps };
                }
            }
            // A lane watermark lower-bounds the link watermark (lane peaks
            // need not coincide in time); the max is the standard
            // distributed-watermark estimate.
            QueryOutput::HighWatermark { mbps }
        }
        QueryOutput::TopK { .. } => {
            let mut per_dst: BTreeMap<u32, f64> = BTreeMap::new();
            let mut k = 0;
            for output in outputs {
                if let QueryOutput::TopK { ranking } = output {
                    k = k.max(ranking.len());
                    for &(dst, count) in ranking {
                        *per_dst.entry(dst).or_insert(0.0) += count;
                    }
                }
            }
            // Distributed top-k from per-lane top-k lists is inherently
            // lossy (a dst just below every lane's cut is lost); counts for
            // the survivors are exact because each dst's flows share a lane.
            let mut ranking: Vec<(u32, f64)> = per_dst.into_iter().collect();
            ranking.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            ranking.truncate(k);
            QueryOutput::TopK { ranking }
        }
        QueryOutput::Autofocus { .. } => {
            let mut clusters: BTreeMap<(u32, u8), f64> = BTreeMap::new();
            for output in outputs {
                if let QueryOutput::Autofocus { clusters: lane } = output {
                    for &(prefix, len, volume) in lane {
                        *clusters.entry((prefix, len)).or_insert(0.0) += volume;
                    }
                }
            }
            QueryOutput::Autofocus {
                clusters: clusters
                    .into_iter()
                    .map(|((prefix, len), volume)| (prefix, len, volume))
                    .collect(),
            }
        }
        QueryOutput::SuperSources { .. } => {
            let mut fanouts: BTreeMap<u32, f64> = BTreeMap::new();
            for output in outputs {
                if let QueryOutput::SuperSources { fanouts: lane } = output {
                    for (&source, &fanout) in lane {
                        // A source's peers split across lanes by host pair,
                        // so per-lane fanouts count disjoint peer sets.
                        *fanouts.entry(source).or_insert(0.0) += fanout;
                    }
                }
            }
            QueryOutput::SuperSources { fanouts }
        }
        QueryOutput::P2pFlows { .. } => {
            let mut flows: BTreeSet<u64> = BTreeSet::new();
            for output in outputs {
                if let QueryOutput::P2pFlows { flows: lane } = output {
                    flows.extend(lane.iter().copied());
                }
            }
            QueryOutput::P2pFlows { flows }
        }
        QueryOutput::Coverage { .. } => {
            let (mut processed_packets, mut total_packets) = (0.0, 0.0);
            for output in outputs {
                if let QueryOutput::Coverage {
                    processed_packets: processed,
                    total_packets: total,
                } = output
                {
                    processed_packets += processed;
                    total_packets += total;
                }
            }
            QueryOutput::Coverage { processed_packets, total_packets }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllocationPolicy;
    use crate::digest::DigestObserver;
    use crate::observer::NullObserver;
    use netshed_queries::{QueryKind, QuerySpec};
    use netshed_trace::{FiveTuple, Packet, TraceConfig, TraceGenerator};

    fn trace(batches: usize, mean_packets: f64, seed: u64) -> Vec<Batch> {
        let config = TraceConfig::default()
            .with_seed(seed)
            .with_mean_packets_per_batch(mean_packets)
            .with_payloads(true);
        TraceGenerator::new(config).batches(batches)
    }

    /// A batch whose packets all belong to one host pair — and therefore all
    /// route to one lane.
    fn single_pair_batch(bin: u64, packets: usize) -> Batch {
        let bin_us = MonitorConfig::default().time_bin_us;
        let start = bin * bin_us;
        let packets = (0..packets)
            .map(|i| {
                let ts = start + (i as u64 * bin_us) / packets as u64;
                let tuple = FiveTuple::new(10, 20, 1000 + (i % 50) as u16, 80, 6);
                Packet::header_only(ts, tuple, 400, 0)
            })
            .collect();
        Batch::new(bin, start, bin_us, packets)
    }

    fn fleet(capacity: f64, lanes: usize) -> ShardedMonitor {
        Monitor::builder()
            .capacity(capacity)
            .strategy(Strategy::Predictive(AllocationPolicy::MmfsCpu))
            .no_noise()
            .seed(7)
            .with_shard_lanes(lanes)
            .query(QuerySpec::new(QueryKind::Counter))
            .build_sharded()
            .expect("valid sharded configuration")
    }

    #[derive(Default)]
    struct IntervalCapture(Vec<Vec<(String, QueryOutput)>>);

    impl RunObserver for IntervalCapture {
        fn on_interval(&mut self, outputs: &[(String, QueryOutput)]) {
            self.0.push(outputs.to_vec());
        }
    }

    #[test]
    fn register_is_fleet_wide_and_preserves_registration_order() {
        let mut fleet = Monitor::builder()
            .with_shard_lanes(3)
            .query(QuerySpec::new(QueryKind::Counter))
            .query(QuerySpec::new(QueryKind::Flows).with_label("flows-live"))
            .build_sharded()
            .expect("valid sharded configuration");
        assert_eq!(fleet.lane_count(), 3);
        assert_eq!(fleet.query_names(), vec!["counter", "flows-live"]);

        let id = fleet.register(&QuerySpec::new(QueryKind::TopK)).expect("register");
        assert_eq!(fleet.query_names(), vec!["counter", "flows-live", "top-k"]);
        fleet.deregister(id).expect("deregister");
        assert_eq!(fleet.query_names(), vec!["counter", "flows-live"]);
    }

    #[test]
    fn build_sharded_rejects_custom_policy_and_predictor() {
        use crate::policy::HysteresisReactivePolicy;
        use netshed_fairness::MmfsPkt;
        use netshed_predict::{EwmaPredictor, Predictor};

        let error = Monitor::builder()
            .with_policy(HysteresisReactivePolicy::new(MmfsPkt))
            .build_sharded()
            .unwrap_err();
        assert!(matches!(error, NetshedError::InvalidConfig(_)));

        let error = Monitor::builder()
            .with_predictor(|| Box::new(EwmaPredictor::new(0.5)) as Box<dyn Predictor>)
            .build_sharded()
            .unwrap_err();
        assert!(matches!(error, NetshedError::InvalidConfig(_)));
    }

    #[test]
    fn coordinator_lends_idle_headroom_to_the_loaded_lane() {
        let capacity = 5.0e8;
        let mut fleet = fleet(capacity, 4);
        let mut observer = NullObserver;

        // A few warm-up bins prime the loaded lane's predictor (the first
        // prediction is zero); every later coordination round redistributes
        // against its reported demand.
        for bin in 0..6 {
            fleet.process_bin(&single_pair_batch(bin, 400), &mut observer).expect("bin");
        }

        let share = capacity / 4.0;
        let budgets = fleet.lane_capacities().to_vec();
        let loaded: Vec<usize> = (0..4).filter(|&lane| budgets[lane] > share).collect();
        assert_eq!(loaded.len(), 1, "exactly one lane borrows headroom: {budgets:?}");
        for (lane, &budget) in budgets.iter().enumerate() {
            if lane != loaded[0] {
                assert!(budget < share, "idle lane {lane} cedes headroom: {budgets:?}");
            }
            assert!(budget > 0.0);
        }
        let total: f64 = budgets.iter().sum();
        assert!(
            (total - capacity).abs() <= capacity * 1e-9,
            "budgets conserve the global capacity: {total} vs {capacity}"
        );
    }

    #[test]
    fn merged_counter_matches_an_unsharded_run_without_shedding() {
        let batches = trace(12, 300.0, 11);
        let config = MonitorConfig::default()
            .with_capacity(1.0e12)
            .with_strategy(Strategy::NoShedding)
            .without_noise();

        let mut monitor = Monitor::new(config.clone());
        monitor.register(&QuerySpec::new(QueryKind::Counter)).expect("register");
        let mut plain = IntervalCapture::default();
        monitor.run(&mut batches.clone().into_iter(), &mut plain).expect("plain run");

        let mut fleet = Monitor::builder()
            .capacity(1.0e12)
            .strategy(Strategy::NoShedding)
            .no_noise()
            .with_shard_lanes(4)
            .query(QuerySpec::new(QueryKind::Counter))
            .build_sharded()
            .expect("valid sharded configuration");
        let mut sharded = IntervalCapture::default();
        fleet.run(&mut batches.clone().into_iter(), &mut sharded).expect("sharded run");

        assert_eq!(plain.0.len(), sharded.0.len(), "interval cadence matches");
        for (plain_interval, sharded_interval) in plain.0.iter().zip(&sharded.0) {
            assert_eq!(plain_interval.len(), sharded_interval.len());
            for ((label_a, output_a), (label_b, output_b)) in
                plain_interval.iter().zip(sharded_interval)
            {
                assert_eq!(label_a, label_b);
                let (
                    QueryOutput::Counter { packets: pa, bytes: ba },
                    QueryOutput::Counter { packets: pb, bytes: bb },
                ) = (output_a, output_b)
                else {
                    panic!("counter outputs expected");
                };
                assert_eq!(pa.to_bits(), pb.to_bits(), "packet counts are exact sums");
                assert_eq!(ba.to_bits(), bb.to_bits(), "byte counts are exact sums");
            }
        }
    }

    #[test]
    fn shard_thread_count_never_changes_the_fingerprint() {
        let batches = trace(16, 250.0, 23);
        let mut digests = Vec::new();
        for shards in [1, 2, 4] {
            let mut fleet = Monitor::builder()
                .capacity(2.0e8)
                .strategy(Strategy::Predictive(AllocationPolicy::MmfsCpu))
                .seed(5)
                .with_shard_lanes(4)
                .with_shards(shards)
                .query(QuerySpec::new(QueryKind::Counter))
                .query(QuerySpec::new(QueryKind::Flows))
                .query(QuerySpec::new(QueryKind::TopK))
                .build_sharded()
                .expect("valid sharded configuration");
            let mut observer = DigestObserver::new();
            let summary = fleet.run(&mut batches.clone().into_iter(), &mut observer).expect("run");
            assert!(summary.bins > 0);
            digests.push(observer.digest());
        }
        assert_eq!(digests[0], digests[1], "1 vs 2 shard threads");
        assert_eq!(digests[0], digests[2], "1 vs 4 shard threads");
    }

    #[test]
    fn lanes_close_intervals_in_lockstep_even_when_idle() {
        // Single-pair traffic leaves three of the four lanes permanently
        // idle; they must still close every measurement interval so outputs
        // can be merged (25 bins of 100 ms → intervals close at bins 10 and
        // 20, plus the final flush).
        let mut fleet = fleet(5.0e8, 4);
        let batches: Vec<Batch> = (0..25).map(|bin| single_pair_batch(bin, 120)).collect();
        let mut observer = IntervalCapture::default();
        let summary = fleet.run(&mut batches.into_iter(), &mut observer).expect("run");

        assert_eq!(summary.bins, 25);
        assert_eq!(observer.0.len(), 3, "two closes plus the final flush");
        let total_packets: f64 = observer
            .0
            .iter()
            .flat_map(|interval| interval.iter())
            .map(|(_, output)| match output {
                QueryOutput::Counter { packets, .. } => *packets,
                _ => panic!("counter output expected"),
            })
            .sum();
        assert!(total_packets > 0.0);
        assert!(total_packets <= (25 * 120) as f64);
    }

    #[test]
    fn the_allocation_game_holds_at_shard_granularity() {
        // Section 5.3 lifted from queries to shards: with the coordinator
        // arbitrating lane budgets through the same fairness machinery, a
        // lane that over-reports its demand cannot improve its own payoff —
        // the equal-share profile is a Nash equilibrium for any lane count.
        use netshed_fairness::{AllocationGame, FairnessMode};
        for lanes in [2usize, 4, 8] {
            let capacity = 5.0e8;
            let game = AllocationGame::new(capacity, lanes, FairnessMode::Cpu);
            let honest = vec![game.equilibrium_action(); lanes];
            assert!(
                game.is_nash_equilibrium(&honest, 64, 1e-6),
                "equal shares must be an equilibrium over {lanes} lanes"
            );
            let honest_payoff = game.payoffs(&honest)[0];
            let best = game.best_unilateral_payoff(&honest, 0, 64);
            assert!(
                best <= honest_payoff + capacity * 1e-9,
                "a greedy lane must not profit from over-reporting \
                 ({lanes} lanes: honest {honest_payoff}, deviation {best})"
            );
        }
    }

    #[test]
    fn coordinator_state_roundtrips() {
        let mut fleet = fleet(5.0e8, 4);
        let mut observer = NullObserver;
        fleet.process_bin(&single_pair_batch(0, 200), &mut observer).expect("bin 0");
        fleet.process_bin(&single_pair_batch(1, 200), &mut observer).expect("bin 1");

        let mut writer = StateWriter::new();
        fleet.save_coordinator_state(&mut writer).expect("save");
        let bytes = writer.into_bytes();

        let mut restored = self::tests::fleet(5.0e8, 4);
        let mut reader = StateReader::new(&bytes);
        restored.load_coordinator_state(&mut reader).expect("load");
        assert_eq!(fleet.lane_capacities(), restored.lane_capacities());

        // A fleet with a different lane count refuses the section.
        let mut mismatched = self::tests::fleet(5.0e8, 2);
        let mut reader = StateReader::new(&bytes);
        assert!(mismatched.load_coordinator_state(&mut reader).is_err());
    }
}
