//! The control-plane half of the robustness plane: graceful degradation
//! under predictor-gaming traffic, and the non-cooperative adversary the
//! defense is evaluated against.
//!
//! Chapter 3's predictor assumes the traffic is *indifferent* to the
//! monitor: features that were cheap yesterday are cheap today. An
//! adversary breaks that assumption on purpose — payloads crafted against
//! the Boyer-Moore skip table, flow churn against the state-query hash
//! tables, aggregate-key skew against flow sampling — so the predicted
//! cycles systematically *under*-estimate the bin cost and the predictive
//! scheme admits far more work than the capacity can absorb.
//!
//! Two policies live here:
//!
//! * [`DegradationGuard`] wraps any inner [`ControlPolicy`] with a per-bin
//!   tripwire on three overload symptoms. While the predictions track reality
//!   the inner decisions pass through untouched (bit-identical — the guard
//!   adds no arithmetic to the healthy path). A bin is *bad* when the
//!   cycles its queries actually consumed exceed what the guard's own
//!   previous decision committed to — Σ prediction × rate × the policy's
//!   own error-EWMA inflation, so drift the inner policy is already
//!   compensating for does not count — by more than `trip_ratio`, **or**
//!   when it dropped packets without control (an overloaded bin caps its
//!   consumption at roughly the capacity, so the cycle ratio alone can be
//!   gamed into silence while drops pile up), **or** when the budget debt
//!   left by an earlier overrun forced it fully dark — zero rates commit
//!   zero cycles, so a single catastrophically under-predicted bin would
//!   otherwise pay itself off through bins that produce no ratio evidence
//!   at all. After `trip_bins` consecutive
//!   bad bins the guard degrades: rates come from a conservative reactive
//!   fallback (Eq. 4.1 in query denomination scaled by a safety factor,
//!   with the rebound after an over-shed bin rationed and the rate halved
//!   again while drops persist,
//!   so the feedback loop cannot oscillate) and every decision carries
//!   [`DecisionReason::DegradedFallback`] so observers — and the
//!   `scenarios` CLI — can see the tripwire state per bin. Recovery is
//!   hysteretic: only after `recover_bins` consecutive bins whose error
//!   ratio is back under `recover_ratio` does the guard trust the
//!   predictions again.
//! * [`AllocationGameAttacker`] models the Section 5.3 resource-allocation
//!   game played dishonestly: one registered query unilaterally over-declares
//!   its demand toward `greed ×` the Nash-equilibrium action `C / |Q|`
//!   before the inner policy allocates. Deterministic and context-only, so
//!   attacked runs replay bit-identically.

use crate::policy::{
    spread_global_rate, ControlContext, ControlDecision, ControlPolicy, DecisionReason,
};
use netshed_fairness::{AllocationGame, AllocationStrategy, EqualRates, FairnessMode, QueryDemand};
use netshed_sketch::{StateError, StateReader, StateWriter};

/// Per-bin multiplicative cap on how fast the degraded fallback rate may
/// rebound after an over-shed bin. Without it the Eq. 4.1 feedback loop
/// oscillates under a persistently gamed predictor: one over-shed bin makes
/// the next ratio huge, the rate snaps back to the clamp and the bin after
/// that overloads again.
const FALLBACK_GROWTH: f64 = 2.0;

/// Eq. 4.1 in *query* denomination: scale the previous bin's mean rate by
/// how far its query-cycle consumption was from the query budget (available
/// cycles net of the shedding mechanism's own smoothed cost). The classic
/// form divides the budget by [`prev_total_cycles`](ControlContext), but
/// the total includes the fixed capture/prediction overheads that do not
/// scale with the sampling rate — at low rates they dominate, the quotient
/// has no fixed point above the floor, and the fallback starves every
/// query. Query cycles against the query budget equilibrate instead.
fn query_budget_rate(ctx: &ControlContext<'_>) -> f64 {
    let budget = (ctx.available_cycles - ctx.shed_cycles_ewma).max(0.0);
    if ctx.prev_query_cycles > 0.0 && ctx.prev_mean_rate > 0.0 {
        (ctx.prev_mean_rate * budget / ctx.prev_query_cycles).clamp(ctx.rate_floor, 1.0)
    } else {
        // No consumption evidence (a dark or first bin): hold the previous
        // rate rather than snapping open — the rebound rationing grows it.
        ctx.prev_mean_rate.clamp(ctx.rate_floor, 1.0)
    }
}

/// Multiplicative backoff applied to the fallback rate when a bin dropped
/// packets without control. On a drop bin the consumed cycles are capped at
/// roughly the capacity — the excess packets never got to cost anything —
/// so Eq. 4.1 barely reacts; halving converges onto the drop-free operating
/// point in a few bins instead.
const DROP_BACKOFF: f64 = 0.5;

/// Tripwire and recovery thresholds of a [`DegradationGuard`].
#[derive(Debug, Clone, Copy)]
pub struct DegradationGuardConfig {
    /// A bin is *bad* when its query cycles exceed the cycles the guard's
    /// previous decision committed to by more than this factor.
    pub trip_ratio: f64,
    /// Consecutive bad bins before the guard degrades.
    pub trip_bins: u32,
    /// While degraded, a bin is *good* when its error ratio is at or below
    /// this factor (strictly below [`trip_ratio`](Self::trip_ratio) — the
    /// hysteresis band that prevents flapping at the threshold).
    pub recover_ratio: f64,
    /// Consecutive good bins before the guard trusts predictions again.
    pub recover_bins: u32,
    /// Extra conservatism applied to the Eq. 4.1 fallback rate while
    /// degraded (the predictions that normally bound the admitted work are
    /// exactly what cannot be trusted).
    pub safety: f64,
    /// Bins at the start of a run during which the tripwire is disarmed.
    /// A cold predictor mispredicts wildly until its history warms up;
    /// those errors are expected and self-correcting, and tripping on them
    /// would leave the guard degraded before any attack could begin.
    pub warmup_bins: u64,
}

impl Default for DegradationGuardConfig {
    fn default() -> Self {
        Self {
            trip_ratio: 2.0,
            trip_bins: 2,
            recover_ratio: 1.5,
            recover_bins: 4,
            safety: 1.0,
            warmup_bins: 10,
        }
    }
}

/// Wraps a [`ControlPolicy`] with an under-prediction tripwire and a
/// conservative reactive fallback: graceful degradation when the predictor
/// is being gamed, hysteretic recovery when the attack stops.
///
/// Strictly opt-in — none of the built-in [`Strategy`](crate::Strategy)
/// configurations construct one, so the pinned golden corpus is unaffected.
/// Install with [`MonitorBuilder::with_policy`](crate::MonitorBuilder):
///
/// ```
/// use netshed_monitor::{DegradationGuard, Monitor, PredictivePolicy};
/// use netshed_fairness::EqualRates;
///
/// let guard = DegradationGuard::new(PredictivePolicy::new(EqualRates));
/// assert_eq!(guard.name(), "guarded_eq_srates");
/// # use netshed_monitor::ControlPolicy;
/// let monitor = Monitor::builder().capacity(1e9).with_policy(guard).build().unwrap();
/// ```
pub struct DegradationGuard {
    inner: Box<dyn ControlPolicy>,
    allocator: Box<dyn AllocationStrategy>,
    config: DegradationGuardConfig,
    /// Cycles the previous decision committed to
    /// (Σ prediction × rate × inflation — the policy's own EWMA-corrected
    /// expectation, so a predictor error the inner policy is already
    /// compensating for does not read as an attack);
    /// `None` before the first decision and after a zero-rate bin.
    expected: Option<f64>,
    /// The rate the fallback used last bin, rationing the rebound to
    /// [`FALLBACK_GROWTH`]; `None` while healthy.
    fallback_rate: Option<f64>,
    /// The previous decision committed zero cycles while the budget was in
    /// debt: the bin went fully dark paying off an earlier overrun. Dark
    /// bins produce no cycle-ratio evidence at all, which is exactly how a
    /// single catastrophically under-predicted bin escapes the tripwire —
    /// its overrun is served as budget debt by the bins after it.
    prev_dark_debt: bool,
    /// Consecutive bad bins observed while healthy.
    bad: u32,
    /// Consecutive good bins observed while degraded.
    good: u32,
    degraded: bool,
    /// Times the tripwire has fired over the run.
    trips: u64,
}

impl DegradationGuard {
    /// Guards `inner` with the default thresholds, spreading the fallback
    /// rate with the Chapter 4 equal-rates scheme.
    pub fn new(inner: impl ControlPolicy + 'static) -> Self {
        Self::with_config(inner, DegradationGuardConfig::default())
    }

    /// Guards `inner` with explicit thresholds.
    ///
    /// # Panics
    ///
    /// Panics when the thresholds are not a hysteresis band
    /// (`1 ≤ recover_ratio ≤ trip_ratio`, both finite), when either bin
    /// count is zero, or when `safety` is outside `(0, 1]`.
    pub fn with_config(
        inner: impl ControlPolicy + 'static,
        config: DegradationGuardConfig,
    ) -> Self {
        assert!(
            config.trip_ratio.is_finite() && config.recover_ratio.is_finite(),
            "guard ratios must be finite"
        );
        assert!(
            1.0 <= config.recover_ratio && config.recover_ratio <= config.trip_ratio,
            "recover ratio must sit in [1, trip_ratio] to form a hysteresis band"
        );
        assert!(config.trip_bins > 0 && config.recover_bins > 0, "bin counts must be positive");
        assert!(
            config.safety.is_finite() && config.safety > 0.0 && config.safety <= 1.0,
            "safety factor must be in (0, 1]"
        );
        Self {
            inner: Box::new(inner),
            allocator: Box::new(EqualRates),
            config,
            expected: None,
            fallback_rate: None,
            prev_dark_debt: false,
            bad: 0,
            good: 0,
            degraded: false,
            trips: 0,
        }
    }

    /// Returns `true` while the guard is running the conservative fallback.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Number of times the tripwire has fired.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Folds the previous bin's outcome into the tripwire state.
    fn observe_previous_bin(&mut self, ctx: &ControlContext<'_>) {
        if ctx.bin_index < self.config.warmup_bins {
            self.expected = None;
            self.prev_dark_debt = false;
            return;
        }
        let dark_debt = std::mem::take(&mut self.prev_dark_debt);
        let ratio = match self.expected.take() {
            Some(expected) if expected > 0.0 && ctx.prev_query_cycles > 0.0 => {
                Some(ctx.prev_query_cycles / expected)
            }
            _ => None,
        };
        // A bin that dropped packets without control is overloaded by
        // definition, whatever the cycle ratio says: consumption is capped
        // at roughly the capacity because the excess packets were dropped
        // before they could cost anything, which is exactly how a gamed
        // predictor hides its overshoot.
        let dropped = ctx.uncontrolled_drops > 0;
        if self.degraded {
            let good =
                !dropped && !dark_debt && ratio.is_none_or(|r| r <= self.config.recover_ratio);
            self.good = if good { self.good + 1 } else { 0 };
            if self.good >= self.config.recover_bins {
                self.degraded = false;
                self.bad = 0;
                self.good = 0;
            }
        } else {
            let bad = dropped || dark_debt || ratio.is_some_and(|r| r > self.config.trip_ratio);
            if bad {
                self.bad += 1;
            } else if ratio.is_some() {
                self.bad = 0;
            }
            // A bin with no evidence either way — zero committed cycles and
            // no drops, e.g. the forced zero-rate bins while a previous
            // overrun's backlog debt is paid off — leaves the streak
            // untouched: absence of evidence is not evidence of health, and
            // resetting here would let a single catastrophic bin hide behind
            // the very debt bins it caused.
            if self.bad >= self.config.trip_bins {
                self.degraded = true;
                self.trips += 1;
                self.good = 0;
            }
        }
    }
}

impl ControlPolicy for DegradationGuard {
    fn decide(&mut self, ctx: &ControlContext<'_>) -> ControlDecision {
        self.observe_previous_bin(ctx);
        // The inner policy always decides, even while degraded: its
        // cross-bin state (EWMA feedback, hysteresis level) must keep
        // tracking reality or recovery would hand control back to a policy
        // frozen in its pre-attack past.
        let mut decision = self.inner.decide(ctx);
        // The inner policy's error-EWMA inflation is the best available
        // estimate of the predictor's current bias, and it keeps tracking
        // reality while degraded; the fallback decision itself carries no
        // inflation, so using the raw committed cycles there would hold the
        // error ratio above `recover_ratio` forever once the predictor has
        // a chronic bias and recovery would never happen.
        let inflation = decision.inflation;
        if self.degraded {
            let target = (query_budget_rate(ctx) * self.config.safety).clamp(ctx.rate_floor, 1.0);
            let dropped = ctx.uncontrolled_drops > 0;
            let rate = if ctx.available_cycles <= 0.0 {
                // The budget is in debt from a previous overrun: there is no
                // sustainable rate to track, so sit at the floor until the
                // debt is paid instead of deepening the spiral.
                ctx.rate_floor
            } else if let Some(prev) = self.fallback_rate {
                if dropped {
                    // Eq. 4.1 is blind on a drop bin — consumption was
                    // capped at capacity by the drops themselves — so ignore
                    // the target and back off outright.
                    (prev * DROP_BACKOFF).max(ctx.rate_floor)
                } else {
                    // Track the Eq. 4.1 target, shedding harder instantly
                    // but rationing the rebound so one over-shed bin cannot
                    // bounce the loop straight back into overload.
                    target.min((prev * FALLBACK_GROWTH).max(ctx.rate_floor))
                }
            } else if dropped {
                // Entering the fallback on a drop bin: Eq. 4.1 is blind to
                // the drop-capped consumption, so halve the previous mean
                // rate instead.
                (ctx.prev_mean_rate * DROP_BACKOFF).clamp(ctx.rate_floor, 1.0)
            } else {
                target
            };
            self.fallback_rate = Some(rate);
            decision = spread_global_rate(self.allocator.as_ref(), rate, ctx.demands);
            decision.reason = DecisionReason::DegradedFallback;
        } else {
            self.fallback_rate = None;
        }
        let committed: f64 = ctx.predictions.iter().zip(&decision.rates).map(|(p, r)| p * r).sum();
        let expected = committed * inflation;
        self.expected = (expected > 0.0).then_some(expected);
        self.prev_dark_debt = committed <= 0.0 && ctx.available_cycles <= 0.0;
        decision
    }

    fn name(&self) -> String {
        format!("guarded_{}", self.inner.name())
    }

    fn needs_measured_cycles(&self) -> bool {
        self.inner.needs_measured_cycles()
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        self.inner.save_state(writer)?;
        writer.opt_f64(self.expected);
        writer.opt_f64(self.fallback_rate);
        writer.bool(self.prev_dark_debt);
        writer.u32(self.bad);
        writer.u32(self.good);
        writer.bool(self.degraded);
        writer.u64(self.trips);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.inner.load_state(reader)?;
        self.expected = reader.opt_f64()?;
        self.fallback_rate = reader.opt_f64()?;
        self.prev_dark_debt = reader.bool()?;
        self.bad = reader.u32()?;
        self.good = reader.u32()?;
        self.degraded = reader.bool()?;
        self.trips = reader.u64()?;
        Ok(())
    }
}

/// A non-cooperative player of the Section 5.3 allocation game, wired
/// through the control plane: before the inner policy allocates, one query
/// unilaterally over-declares its predicted cost toward `greed ×` the
/// Nash-equilibrium action `C / |Q|` (Theorem 5.1), trying to grab more
/// than its fair share of the bin.
///
/// The attacker manipulates only the *declared* demand the allocator sees;
/// the data plane still runs the real queries, so the damage shows up as
/// honest queries shed harder than the traffic warrants. Theorem 5.1
/// predicts the max-min allocators punish the deviation (an over-bid that
/// does not fit is disabled outright) while `eq_srates` lets it through —
/// exactly what the robustness harness measures.
pub struct AllocationGameAttacker {
    inner: Box<dyn ControlPolicy>,
    /// Registration index of the dishonest query.
    attacker: usize,
    /// Multiplier on the equilibrium action `C / |Q|`.
    greed: f64,
    mode: FairnessMode,
}

impl AllocationGameAttacker {
    /// Wraps `inner` with a dishonest player at registration index
    /// `attacker` bidding `greed ×` the equilibrium action.
    ///
    /// # Panics
    ///
    /// Panics when `greed` is not finite and positive.
    pub fn new(inner: impl ControlPolicy + 'static, attacker: usize, greed: f64) -> Self {
        assert!(greed.is_finite() && greed > 0.0, "greed must be finite and positive");
        Self { inner: Box::new(inner), attacker, greed, mode: FairnessMode::Cpu }
    }

    /// Switches the equilibrium computation to the packet-access flavour.
    pub fn with_mode(mut self, mode: FairnessMode) -> Self {
        self.mode = mode;
        self
    }

    /// The bid the attacker declares for a context: `greed × C / |Q|`,
    /// never less than its honest prediction (a rational player does not
    /// under-bid below its real need).
    fn bid(&self, ctx: &ControlContext<'_>) -> f64 {
        let game =
            AllocationGame::new(ctx.available_cycles.max(0.0), ctx.predictions.len(), self.mode);
        let honest = ctx.predictions.get(self.attacker).copied().unwrap_or(0.0);
        (game.equilibrium_action() * self.greed).max(honest)
    }
}

impl ControlPolicy for AllocationGameAttacker {
    fn decide(&mut self, ctx: &ControlContext<'_>) -> ControlDecision {
        if self.attacker >= ctx.predictions.len() {
            return self.inner.decide(ctx);
        }
        let bid = self.bid(ctx);
        let mut predictions = ctx.predictions.to_vec();
        predictions[self.attacker] = bid;
        let mut demands = ctx.demands.to_vec();
        demands[self.attacker] = QueryDemand::new(bid, demands[self.attacker].min_rate);
        let gamed = ControlContext { predictions: &predictions, demands: &demands, ..*ctx };
        self.inner.decide(&gamed)
    }

    fn name(&self) -> String {
        format!("gamed_q{}_{}", self.attacker, self.inner.name())
    }

    fn needs_measured_cycles(&self) -> bool {
        self.inner.needs_measured_cycles()
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        self.inner.save_state(writer)
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.inner.load_state(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NoSheddingPolicy, PredictivePolicy};
    use netshed_fairness::MmfsCpu;

    fn ctx<'a>(
        predictions: &'a [f64],
        demands: &'a [QueryDemand],
        available: f64,
    ) -> ControlContext<'a> {
        ControlContext {
            // Past the guard's default cold-start grace, so tripwire tests
            // exercise the armed state.
            bin_index: 42,
            predictions,
            demands,
            available_cycles: available,
            error_ewma: 0.0,
            shed_cycles_ewma: 0.0,
            prev_mean_rate: 1.0,
            prev_total_cycles: 0.0,
            prev_query_cycles: 0.0,
            uncontrolled_drops: 0,
            rate_floor: 0.05,
            measured_cycles: None,
        }
    }

    fn demands_of(predictions: &[f64], min_rate: f64) -> Vec<QueryDemand> {
        predictions.iter().map(|&p| QueryDemand::new(p, min_rate)).collect()
    }

    /// Drives one bin through the guard, reporting `actual` as the query
    /// cycles the *previous* bin consumed.
    fn step(
        guard: &mut DegradationGuard,
        predictions: &[f64],
        available: f64,
        actual: f64,
    ) -> ControlDecision {
        let demands = demands_of(predictions, 0.0);
        let mut context = ctx(predictions, &demands, available);
        context.prev_total_cycles = actual;
        context.prev_query_cycles = actual;
        context.prev_mean_rate = 1.0;
        guard.decide(&context)
    }

    #[test]
    fn healthy_bins_pass_the_inner_decision_through_unchanged() {
        let mut guard = DegradationGuard::new(PredictivePolicy::new(EqualRates));
        let mut plain = PredictivePolicy::new(EqualRates);
        let predictions = [400.0, 600.0];
        let demands = demands_of(&predictions, 0.0);
        let mut context = ctx(&predictions, &demands, 2000.0);
        for bin in 0..10 {
            context.bin_index = bin;
            // Actual tracks the committed expectation exactly: never trips.
            context.prev_query_cycles = if bin == 0 { 0.0 } else { 1000.0 };
            assert_eq!(guard.decide(&context), plain.decide(&context));
            assert!(!guard.is_degraded());
        }
        assert_eq!(guard.trips(), 0);
    }

    #[test]
    fn sustained_under_prediction_trips_into_degraded_fallback() {
        let mut guard = DegradationGuard::new(NoSheddingPolicy);
        let predictions = [500.0];
        // Bin 0 commits to 500 cycles; every later bin reports 10× that.
        let first = step(&mut guard, &predictions, 1000.0, 0.0);
        assert_eq!(first.reason, DecisionReason::FitsInBudget);
        let _ = step(&mut guard, &predictions, 1000.0, 5000.0); // bad 1
        assert!(!guard.is_degraded(), "one bad bin must not trip");
        let tripped = step(&mut guard, &predictions, 1000.0, 5000.0); // bad 2
        assert!(guard.is_degraded());
        assert_eq!(guard.trips(), 1);
        assert_eq!(tripped.reason, DecisionReason::DegradedFallback);
        // Eq. 4.1 gives 1.0 × 1000 / 5000 = 0.2.
        assert!((tripped.rates[0] - 0.2).abs() < 1e-9, "{:?}", tripped.rates);
    }

    #[test]
    fn debt_forced_dark_bins_count_as_bad_evidence() {
        // One catastrophically under-predicted bin throws the budget into
        // debt; the bins paying it off run at zero rates and produce no
        // cycle-ratio evidence. Without the dark-debt symptom the streak
        // would stall at one bad bin and the overrun would escape the
        // tripwire entirely.
        let mut guard = DegradationGuard::new(PredictivePolicy::new(EqualRates));
        let predictions = [500.0];
        let demands = demands_of(&predictions, 0.0);

        let mut first = ctx(&predictions, &demands, 1000.0);
        let decision = guard.decide(&first); // commits 500 cycles
        assert_eq!(decision.rates, vec![1.0]);

        // The bin blew up 10×: bad streak 1, and the budget is now in debt,
        // so the inner policy forces this bin fully dark.
        first.available_cycles = -500.0;
        first.prev_total_cycles = 5000.0;
        first.prev_query_cycles = 5000.0;
        let dark = guard.decide(&first);
        assert!(!guard.is_degraded(), "one bad bin must not trip");
        assert_eq!(dark.rates, vec![0.0], "a debt bin is forced dark");

        // The dark bin yields no ratio at all — only the dark-debt symptom
        // reaches the streak and completes the trip.
        let mut paying = ctx(&predictions, &demands, -200.0);
        paying.prev_mean_rate = 0.05;
        let tripped = guard.decide(&paying);
        assert!(guard.is_degraded(), "dark debt must complete the streak");
        assert_eq!(tripped.reason, DecisionReason::DegradedFallback);
        // Still in debt: the fallback sits at the rate floor, keeping the
        // bin lit instead of dark.
        assert_eq!(tripped.rates, vec![0.05]);
    }

    #[test]
    fn recovery_needs_consecutive_good_bins() {
        let config = DegradationGuardConfig { recover_bins: 3, ..Default::default() };
        let mut guard = DegradationGuard::with_config(NoSheddingPolicy, config);
        let predictions = [500.0];
        let _ = step(&mut guard, &predictions, 1000.0, 0.0);
        let _ = step(&mut guard, &predictions, 1000.0, 5000.0);
        let _ = step(&mut guard, &predictions, 1000.0, 5000.0);
        assert!(guard.is_degraded());

        // The fallback ran at rate 0.2, so a good-bin report of 50 cycles
        // sits well under the committed 500 × 0.2. Two good bins then a
        // bad one must reset the streak.
        let _ = step(&mut guard, &predictions, 1000.0, 50.0);
        let _ = step(&mut guard, &predictions, 1000.0, 50.0);
        let _ = step(&mut guard, &predictions, 1000.0, 5000.0);
        assert!(guard.is_degraded(), "a bad bin must reset the recovery streak");
        let _ = step(&mut guard, &predictions, 1000.0, 50.0);
        let _ = step(&mut guard, &predictions, 1000.0, 50.0);
        let recovered = step(&mut guard, &predictions, 1000.0, 50.0);
        assert!(!guard.is_degraded(), "three consecutive good bins must recover");
        assert_eq!(recovered.reason, DecisionReason::FitsInBudget);
        assert_eq!(recovered.rates, vec![1.0]);
    }

    #[test]
    fn fallback_rate_rebounds_gradually_after_over_shedding() {
        let mut guard = DegradationGuard::new(NoSheddingPolicy);
        let predictions = [500.0];
        let _ = step(&mut guard, &predictions, 1000.0, 0.0);
        let _ = step(&mut guard, &predictions, 1000.0, 5000.0);
        let tripped = step(&mut guard, &predictions, 1000.0, 5000.0);
        assert!((tripped.rates[0] - 0.2).abs() < 1e-9);

        // The fallback over-shed (tiny actuals), so raw Eq. 4.1 snaps to the
        // clamp — the guard must instead ration the rebound to ×2 per bin
        // rather than bouncing straight back into overload.
        let a = step(&mut guard, &predictions, 1000.0, 50.0);
        assert!((a.rates[0] - 0.4).abs() < 1e-9, "{:?}", a.rates);
        let b = step(&mut guard, &predictions, 1000.0, 50.0);
        assert!((b.rates[0] - 0.8).abs() < 1e-9, "{:?}", b.rates);
        // A drop bin caps consumption at capacity, so the Eq. 4.1 target is
        // meaningless there: the rate halves outright instead.
        let demands = demands_of(&predictions, 0.0);
        let mut dropping = ctx(&predictions, &demands, 1000.0);
        dropping.prev_query_cycles = 900.0;
        dropping.uncontrolled_drops = 17;
        let c = guard.decide(&dropping);
        assert!((c.rates[0] - 0.8 * 0.5).abs() < 1e-9, "{:?}", c.rates);
        // Shedding harder is never rationed: a fresh overload bin drops the
        // rate straight to the Eq. 4.1 target (1000/20000 = 0.05, exactly
        // at the rate floor).
        let d = step(&mut guard, &predictions, 1000.0, 20_000.0);
        assert!((d.rates[0] - 0.05).abs() < 1e-9, "{:?}", d.rates);
        // A bin whose budget is already in debt pins the rate to the floor.
        let mut indebted = ctx(&predictions, &demands, -500.0);
        indebted.prev_query_cycles = 900.0;
        let e = guard.decide(&indebted);
        assert!((e.rates[0] - 0.05).abs() < 1e-9, "{:?}", e.rates);
    }

    #[test]
    fn guard_state_survives_a_checkpoint_roundtrip() {
        let mut guard = DegradationGuard::new(NoSheddingPolicy);
        let predictions = [500.0];
        let _ = step(&mut guard, &predictions, 1000.0, 0.0);
        let _ = step(&mut guard, &predictions, 1000.0, 5000.0);
        let _ = step(&mut guard, &predictions, 1000.0, 5000.0);
        assert!(guard.is_degraded());

        let mut writer = StateWriter::new();
        guard.save_state(&mut writer).expect("save");
        let bytes = writer.into_bytes();
        let mut restored = DegradationGuard::new(NoSheddingPolicy);
        let mut reader = StateReader::new(&bytes);
        restored.load_state(&mut reader).expect("load");
        reader.finish().expect("no trailing state");
        assert!(restored.is_degraded());
        assert_eq!(restored.trips(), 1);

        // Both continue identically.
        let a = step(&mut guard, &predictions, 1000.0, 50.0);
        let b = step(&mut restored, &predictions, 1000.0, 50.0);
        assert_eq!(a, b);
    }

    #[test]
    fn guard_names_compose_and_invalid_configs_panic() {
        assert_eq!(DegradationGuard::new(NoSheddingPolicy).name(), "guarded_no_lshed");
        assert_eq!(
            DegradationGuard::new(PredictivePolicy::new(MmfsCpu)).name(),
            "guarded_mmfs_cpu"
        );
        let invalid = DegradationGuardConfig { recover_ratio: 5.0, ..Default::default() };
        let result = std::panic::catch_unwind(|| {
            let _ = DegradationGuard::with_config(NoSheddingPolicy, invalid);
        });
        assert!(result.is_err(), "an inverted hysteresis band must be rejected");
    }

    #[test]
    fn attacker_hurts_equal_rates_but_max_min_contains_it() {
        // Capacity 900, 3 players: equilibrium action 300, greed 2 → 600,
        // so the declared demand (600 + 200 + 200) overflows the budget the
        // honest profile (3 × 200) would have fit in.
        let predictions = [200.0, 200.0, 200.0];
        let demands = demands_of(&predictions, 0.0);
        let context = ctx(&predictions, &demands, 900.0);
        assert_eq!(
            PredictivePolicy::new(EqualRates).decide(&context).rates,
            vec![1.0, 1.0, 1.0],
            "the honest profile fits without shedding"
        );

        // Under eq_srates everyone shares one rate: the honest queries pay
        // for the attacker's over-bid.
        let mut attacked = AllocationGameAttacker::new(PredictivePolicy::new(EqualRates), 1, 2.0);
        let gamed = attacked.decide(&context);
        assert_eq!(gamed.reason, DecisionReason::Overload);
        assert!(
            gamed.rates[0] < 1.0 && gamed.rates[2] < 1.0,
            "honest queries pay under eq_srates: {:?}",
            gamed.rates
        );

        // Max-min fair share contains the deviation (Theorem 5.1): the
        // honest queries keep their full rates, only the over-bidder is cut.
        let mut contained = AllocationGameAttacker::new(PredictivePolicy::new(MmfsCpu), 1, 2.0);
        let fair = contained.decide(&context);
        assert_eq!(fair.rates[0], 1.0, "{:?}", fair.rates);
        assert_eq!(fair.rates[2], 1.0, "{:?}", fair.rates);
        assert!(fair.rates[1] < 1.0, "the over-bidder absorbs its own cut: {:?}", fair.rates);
    }

    #[test]
    fn attacker_name_and_out_of_range_index_passthrough() {
        let mut attacked = AllocationGameAttacker::new(NoSheddingPolicy, 7, 3.0);
        assert_eq!(attacked.name(), "gamed_q7_no_lshed");
        let predictions = [100.0];
        let demands = demands_of(&predictions, 0.0);
        let decision = attacked.decide(&ctx(&predictions, &demands, 50.0));
        assert_eq!(decision.rates, vec![1.0], "an absent attacker changes nothing");
    }
}
