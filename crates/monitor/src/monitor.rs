//! The monitoring system: prediction-driven load shedding over black-box
//! queries (Algorithm 1 of the paper plus the Chapter 5 allocation policies
//! and the Chapter 6 custom-shedding enforcement).

use crate::builder::MonitorBuilder;
use crate::capture::CaptureBuffer;
use crate::config::MonitorConfig;
use crate::error::NetshedError;
use crate::exec::{self, ExecStats};
use crate::observer::RunObserver;
use crate::policy::{ControlContext, ControlPolicy};
use crate::report::{BinRecord, QueryBinRecord, RunSummary};
use crate::shedder::{flow_sample_with, packet_sample_with};
use netshed_fairness::QueryDemand;
use netshed_features::{ExtractorConfig, FeatureExtractor, FeatureVector};
use netshed_predict::{Predictor, PredictorFactory};
use netshed_queries::{
    build_query_from_spec, CustomBehavior, CycleMeter, MeasurementNoise, NoiseDraw, Query,
    QueryKind, QueryOutput, QuerySpec, SheddingMethod,
};
use netshed_sketch::{H3Hasher, StateError, StateReader, StateWriter};
use netshed_trace::{Batch, BatchView, KeepListPool, PacketSource};
use rand::rngs::StdRng;
use rand::SeedableRng;
// lint:allow(telemetry-clock): wall-clock readings here only feed ExecStats/BinRecord telemetry, never control flow
use std::time::Instant;

/// Cycles charged per feature-extraction elementary operation (one hash plus
/// one bitmap update). Keeps the prediction overhead in the ~10% range of
/// Table 3.4 for the default workloads.
const FEATURE_OP_CYCLES: u64 = 25;
/// Cycles charged per feature-extraction operation when features are
/// *re-extracted* over a query's sampled stream. The paper (Section 5.5.4)
/// notes that this overhead can be reduced by only recomputing the features
/// actually selected as predictors; the reduced constant models that
/// optimisation.
const REEXTRACT_OP_CYCLES: u64 = 6;
/// Cycles charged per predictor elementary operation (correlation / OLS step).
const PREDICT_OP_CYCLES: u64 = 4;
/// Cycles charged per packet examined by a sampler.
const SAMPLING_TEST_CYCLES: u64 = 12;
/// Fraction of the capture buffer occupation above which the buffer
/// discovery algorithm considers the system unstable and resets `rtthresh`.
const BUFFER_UNSTABLE_OCCUPATION: f64 = 0.3;
/// Maximum fraction of the per-bin capacity that `rtthresh` may reach.
const RTTHRESH_MAX_FRACTION: f64 = 0.25;

/// Stable handle to a query instance registered in a [`Monitor`].
///
/// Handles are unique for the lifetime of the monitor: deregistering a query
/// retires its id, and registering the same [`QuerySpec`] again yields a new
/// one. Because instances are identified by handle rather than by name, the
/// same [`QueryKind`](netshed_queries::QueryKind) can run several times
/// concurrently under distinct labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(u64);

impl QueryId {
    /// The raw registration counter behind the handle.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query#{}", self.0)
    }
}

/// The per-query state an execution-plane worker mutates while processing a
/// bin: the query itself, its oracle shadow twin, its predictor and the
/// extractor that recomputes features over its sampled stream.
///
/// Split out of [`RegisteredQuery`] so a dispatched task can borrow one
/// query's execution state `&mut` while the monitor keeps the control-plane
/// fields (label, enforcement counters, flow hasher) to itself — the borrow
/// boundary that makes the scoped-worker dispatch safe.
struct QueryExecState {
    query: Box<dyn Query>,
    /// Shadow twin fed the full (unsampled) stream to measure the bin's
    /// actual cycles for oracle-style policies. Its work is not charged
    /// against the capacity.
    shadow: Option<Box<dyn Query>>,
    predictor: Box<dyn Predictor>,
    /// Extractor used to recompute features over this query's sampled stream
    /// (needed to keep the MLR history consistent, Section 4.3).
    sampled_extractor: FeatureExtractor,
    /// Keep-list pool for the flow-sampled view this query's worker task
    /// builds; owned per query so the dispatch needs no shared state.
    shed_pool: KeepListPool,
}

// Execution states cross the scoped-thread boundary as `&mut` borrows;
// `Query`, `Predictor` and the extractor are all `Send` by bound or by
// construction. Compile-time proof:
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<QueryExecState>();
};

/// One query registered in the monitor, together with its prediction state.
struct RegisteredQuery {
    id: QueryId,
    label: String,
    shedding: SheddingMethod,
    min_rate: f64,
    /// The spec this instance was built from, when registered through
    /// [`Monitor::register`]; lets the monitor build a shadow twin for
    /// policies that need the true full-batch cycles.
    spec: Option<QuerySpec>,
    /// Flow-sampling hash function, redrawn every measurement interval.
    flow_hasher: H3Hasher,
    hasher_generation: u64,
    /// Chapter 6 enforcement state.
    overuse_ratio: f64,
    violations: u32,
    penalty_remaining: u32,
    /// The state a dispatched worker borrows while processing a bin.
    exec: QueryExecState,
}

/// The load-shedding monitoring system.
pub struct Monitor {
    config: MonitorConfig,
    /// The control-plane policy deciding per-bin sampling rates. Defaults to
    /// the built-in the configured [`Strategy`](crate::Strategy) names.
    policy: Box<dyn ControlPolicy>,
    /// Builds one predictor per registered query. Defaults to the built-in
    /// the configured [`PredictorKind`](crate::PredictorKind) names.
    predictor_factory: Box<dyn PredictorFactory>,
    extractor: FeatureExtractor,
    queries: Vec<RegisteredQuery>,
    buffer: CaptureBuffer,
    noise: MeasurementNoise,
    rng: StdRng,
    /// EWMA of the relative under-prediction error (Algorithm 1, line 17).
    error_ewma: f64,
    /// EWMA of the cycles spent by the load shedding subsystem itself.
    shed_cycles_ewma: f64,
    /// Buffer-discovery threshold (`rtthresh` of Section 4.1).
    rtthresh: f64,
    /// Slow-start threshold of the buffer discovery algorithm.
    rtthresh_ssthresh: f64,
    /// Reactive strategy state: previous global sampling rate and cycles.
    reactive_rate: f64,
    reactive_consumed: f64,
    /// Query-only cycles of the previous bin (no capture/prediction
    /// overheads) — the tripwire denomination of the robustness plane.
    reactive_query_cycles: f64,
    current_interval: Option<u64>,
    /// Monotonic registration counter backing [`QueryId`] handles.
    next_query_id: u64,
    /// Cumulative execution-plane telemetry (sequential vs dispatched time).
    exec_stats: ExecStats,
    /// Keep-list pool for the plan-phase shed views (capture-buffer overflow
    /// and packet sampling), recycled across bins.
    shed_pool: KeepListPool,
    /// Per-dispatch timing scratches, one per dispatch site of a bin, so the
    /// steady-state loop re-dispatches without allocating.
    extract_timings: exec::TaskTimings,
    predict_timings: exec::TaskTimings,
    shadow_timings: exec::TaskTimings,
    tail_timings: exec::TaskTimings,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("policy", &self.policy.name())
            .field("capacity_cycles_per_bin", &self.config.capacity_cycles_per_bin)
            .field("queries", &self.query_names())
            .field("error_ewma", &self.error_ewma)
            .finish_non_exhaustive()
    }
}

impl Monitor {
    /// Creates a monitor with no queries registered, running the built-in
    /// policy and predictor the configuration's [`Strategy`](crate::Strategy)
    /// and [`PredictorKind`](crate::PredictorKind) name.
    pub fn new(config: MonitorConfig) -> Self {
        let buffer =
            CaptureBuffer::new(config.capacity_cycles_per_bin, config.buffer_capacity_bins);
        let noise = MeasurementNoise::new(
            config.seed ^ 0x9e3779b97f4a7c15,
            config.noise_jitter,
            config.noise_outlier_probability,
            config.noise_outlier_cycles,
        );
        let extractor = FeatureExtractor::new(ExtractorConfig {
            measurement_interval_us: config.measurement_interval_us,
            ..ExtractorConfig::default()
        });
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            policy: config.strategy.control_policy(),
            predictor_factory: config.predictor.factory(config.mlr),
            extractor,
            queries: Vec::new(),
            buffer,
            noise,
            rng,
            error_ewma: 0.0,
            shed_cycles_ewma: 0.0,
            rtthresh: 0.0,
            rtthresh_ssthresh: f64::INFINITY,
            reactive_rate: 1.0,
            reactive_consumed: 0.0,
            reactive_query_cycles: 0.0,
            current_interval: None,
            next_query_id: 0,
            exec_stats: ExecStats::default(),
            shed_pool: KeepListPool::new(),
            extract_timings: exec::TaskTimings::new(),
            predict_timings: exec::TaskTimings::new(),
            shadow_timings: exec::TaskTimings::new(),
            tail_timings: exec::TaskTimings::new(),
            config,
        }
    }

    /// Starts a fluent, validating [`MonitorBuilder`] — the recommended way
    /// to construct a monitor.
    pub fn builder() -> MonitorBuilder {
        MonitorBuilder::new()
    }

    /// The configuration this monitor runs with. Use it to keep companion
    /// components in lockstep, e.g.
    /// `AccuracyTracker::new(&specs, monitor.config().measurement_interval_us)`.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Name of the control-plane policy currently installed (the configured
    /// strategy's name unless a custom policy was plugged in).
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Installs a control-plane policy, replacing the current one.
    ///
    /// Intended for construction time (the builder's
    /// [`with_policy`](crate::MonitorBuilder::with_policy) calls this);
    /// swapping mid-run is allowed but any shadow executions the new policy
    /// needs start from empty state, so their first measurement interval
    /// under-reports stateful queries.
    pub fn set_policy(&mut self, policy: Box<dyn ControlPolicy>) {
        self.policy = policy;
        let needs_shadow = self.policy.needs_measured_cycles();
        for registered in &mut self.queries {
            registered.exec.shadow = if needs_shadow {
                registered.spec.as_ref().map(|spec| build_query_from_spec(spec))
            } else {
                None
            };
        }
    }

    /// Installs a predictor factory, replacing the current one. Only queries
    /// registered *after* the call use the new factory; existing predictors
    /// keep their history.
    pub fn set_predictor_factory(&mut self, factory: Box<dyn PredictorFactory>) {
        self.predictor_factory = factory;
    }

    /// Registers a query described by a [`QuerySpec`] and returns its stable
    /// handle. Queries may be added at any point during a run (Figure 6.9
    /// studies query arrivals): the new instance takes part in prediction and
    /// allocation from the next batch on.
    pub fn register(&mut self, spec: &QuerySpec) -> Result<QueryId, NetshedError> {
        if let Some(rate) = spec.min_sampling_rate {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(NetshedError::InvalidConfig(format!(
                    "min_sampling_rate for '{}' must be in [0, 1], got {rate}",
                    spec.resolved_label()
                )));
            }
        }
        let query = build_query_from_spec(spec);
        self.register_inner(
            query,
            Some(spec.clone()),
            Some(spec.resolved_label()),
            spec.min_sampling_rate,
        )
    }

    /// Registers an already constructed query instance under an optional
    /// label (defaults to the query's own name), optionally overriding its
    /// minimum sampling rate constraint.
    ///
    /// Instances registered this way carry no [`QuerySpec`], so oracle-style
    /// policies cannot build a shadow twin for them and fall back to the
    /// predicted cycles.
    pub fn register_instance(
        &mut self,
        query: Box<dyn Query>,
        label: Option<String>,
        min_rate: Option<f64>,
    ) -> Result<QueryId, NetshedError> {
        self.register_inner(query, None, label, min_rate)
    }

    fn register_inner(
        &mut self,
        query: Box<dyn Query>,
        spec: Option<QuerySpec>,
        label: Option<String>,
        min_rate: Option<f64>,
    ) -> Result<QueryId, NetshedError> {
        if let Some(rate) = min_rate {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(NetshedError::InvalidConfig(format!(
                    "min_sampling_rate for '{}' must be in [0, 1], got {rate}",
                    label.as_deref().unwrap_or(query.name())
                )));
            }
        }
        let predictor = self.predictor_factory.make();
        let shadow = if self.policy.needs_measured_cycles() {
            spec.as_ref().map(|spec| build_query_from_spec(spec))
        } else {
            None
        };
        let id = QueryId(self.next_query_id);
        self.next_query_id += 1;
        let registered = RegisteredQuery {
            id,
            label: label.unwrap_or_else(|| query.name().to_string()),
            shedding: query.preferred_shedding(),
            min_rate: min_rate.unwrap_or(query.min_sampling_rate()).clamp(0.0, 1.0),
            spec,
            flow_hasher: H3Hasher::new(13, self.config.seed ^ (id.0 + 1)),
            hasher_generation: 0,
            overuse_ratio: 1.0,
            violations: 0,
            penalty_remaining: 0,
            exec: QueryExecState {
                query,
                shadow,
                predictor,
                sampled_extractor: FeatureExtractor::new(ExtractorConfig {
                    measurement_interval_us: self.config.measurement_interval_us,
                    ..ExtractorConfig::default()
                }),
                shed_pool: KeepListPool::new(),
            },
        };
        self.queries.push(registered);
        Ok(id)
    }

    /// Deregisters a query instance by handle. The instance's state
    /// (predictor history, pending interval output) is discarded.
    pub fn deregister(&mut self, id: QueryId) -> Result<(), NetshedError> {
        match self.queries.iter().position(|q| q.id == id) {
            Some(position) => {
                self.queries.remove(position);
                Ok(())
            }
            None => Err(NetshedError::UnknownQuery(id.to_string())),
        }
    }

    /// Labels of the registered queries, in registration order.
    pub fn query_names(&self) -> Vec<String> {
        self.queries.iter().map(|q| q.label.clone()).collect()
    }

    /// Handles and labels of the registered queries, in registration order.
    pub fn query_handles(&self) -> Vec<(QueryId, &str)> {
        self.queries.iter().map(|q| (q.id, q.label.as_str())).collect()
    }

    /// Number of packets dropped without control since the start of the run.
    pub fn uncontrolled_drops(&self) -> u64 {
        self.buffer.dropped_packets()
    }

    /// Current smoothed prediction error.
    pub fn prediction_error_ewma(&self) -> f64 {
        self.error_ewma
    }

    /// Current buffer-discovery threshold (`rtthresh` of Section 4.1).
    pub fn rtthresh(&self) -> f64 {
        self.rtthresh
    }

    /// Number of workers the execution plane dispatches the per-bin query
    /// tail to (1 = everything runs inline on the calling thread).
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Cumulative execution-plane telemetry: time spent on the sequential
    /// control path vs in dispatchable tasks, and the makespans a 1/2/4/8
    /// worker pool would need for the measured task costs. See [`ExecStats`].
    pub fn exec_stats(&self) -> ExecStats {
        self.exec_stats
    }

    /// Whether a measurement interval is currently open (at least one batch
    /// has been processed since the last [`finish_interval`]
    /// (Monitor::finish_interval)). Drivers replicating [`Monitor::run`]'s
    /// loop — like the service-plane daemon — use this to decide whether a
    /// final flush is due when the source is exhausted.
    pub fn interval_open(&self) -> bool {
        self.current_interval.is_some()
    }

    /// Flushes the current measurement interval, returning the per-query
    /// outputs. Call once after the last batch of a run (or let
    /// [`Monitor::run`] do it).
    pub fn finish_interval(&mut self) -> Vec<(String, QueryOutput)> {
        self.current_interval = None;
        self.close_interval()
    }

    /// Replaces the cycle budget of the *next* bins.
    ///
    /// This is the cross-shard coordinator's knob: only the compute budget
    /// (`capacity_cycles_per_bin`) moves — the capture buffer keeps the
    /// depth it was built with, because buffer memory models the NIC-drain
    /// capacity of the deployment, which reallocating compute does not
    /// change. The budget must be positive and finite (enforced by
    /// [`Monitor::process_batch`] as `CapacityUnderflow` otherwise).
    pub fn set_bin_capacity(&mut self, cycles_per_bin: f64) {
        self.config.capacity_cycles_per_bin = cycles_per_bin;
    }

    /// Advances the measurement-interval clock over an *empty* bin,
    /// returning the closed interval's outputs when the bin starts a new
    /// interval — the interval-bookkeeping head of
    /// [`Monitor::process_batch`] without any packet work.
    ///
    /// [`Monitor::run`] skips empty bins entirely, which is sound for a
    /// single monitor (the next non-empty batch closes the interval).
    /// Lock-step lane fleets cannot skip: every lane must close intervals on
    /// the *same* bins, including lanes that happened to receive no packets
    /// for a bin whose global batch was non-empty. Such drivers feed every
    /// lane every bin — non-empty sub-batches through `process_batch`, empty
    /// ones through this method.
    pub fn advance_empty_bin(&mut self, batch: &Batch) -> Option<Vec<(String, QueryOutput)>> {
        let interval = batch.measurement_interval(self.config.measurement_interval_us);
        let interval_outputs =
            if self.current_interval.is_some() && self.current_interval != Some(interval) {
                Some(self.close_interval())
            } else {
                None
            };
        self.current_interval = Some(interval);
        interval_outputs
    }

    /// Drives the full monitoring pipeline over a batch source until the
    /// source is exhausted, reporting progress to `observer` and returning
    /// the aggregated [`RunSummary`].
    ///
    /// Per batch, the observer sees `on_batch` (before processing),
    /// `on_interval` (when the batch closed a measurement interval),
    /// `on_decision` (the control-plane decision for the bin) and `on_bin`;
    /// after the last batch the final interval is flushed to `on_interval`
    /// and `on_end` receives the summary. Empty time bins are counted and
    /// skipped — a quiet bin mid-stream carries no work and is not an error,
    /// unlike an empty batch handed directly to [`Monitor::process_batch`].
    ///
    /// Infinite sources (like a bare
    /// [`TraceGenerator`](netshed_trace::TraceGenerator)) must be bounded
    /// first with
    /// [`take_batches`](netshed_trace::PacketSourceExt::take_batches).
    pub fn run<S, O>(
        &mut self,
        source: &mut S,
        observer: &mut O,
    ) -> Result<RunSummary, NetshedError>
    where
        S: PacketSource + ?Sized,
        O: RunObserver + ?Sized,
    {
        let mut summary = RunSummary::default();
        while let Some(batch) = source.next_batch() {
            if batch.is_empty() {
                summary.empty_bins += 1;
                continue;
            }
            observer.on_batch(&batch);
            let record = self.process_batch(&batch)?;
            if let Some(outputs) = &record.interval_outputs {
                observer.on_interval(outputs);
            }
            observer.on_decision(record.bin_index, &record.decision);
            summary.absorb(&record);
            observer.on_bin(&record);
        }
        if self.current_interval.is_some() {
            let outputs = self.finish_interval();
            observer.on_interval(&outputs);
        }
        observer.on_end(&summary);
        Ok(summary)
    }

    /// Processes one incoming batch and returns the record of what happened.
    ///
    /// Returns [`NetshedError::EmptyBatch`] for a batch with no packets and
    /// [`NetshedError::CapacityUnderflow`] when the configured capacity is
    /// not positive (possible only for monitors built by [`Monitor::new`]
    /// from an unvalidated configuration).
    pub fn process_batch(&mut self, batch: &Batch) -> Result<BinRecord, NetshedError> {
        // lint:allow(telemetry-clock): bin wall time is reported in ExecStats only; decisions use modelled cycles
        let bin_start = Instant::now();
        if batch.is_empty() {
            return Err(NetshedError::EmptyBatch { bin_index: batch.bin_index });
        }
        if !self.config.capacity_cycles_per_bin.is_finite()
            || self.config.capacity_cycles_per_bin <= 0.0
        {
            return Err(NetshedError::CapacityUnderflow {
                capacity: self.config.capacity_cycles_per_bin,
                required: self.config.platform_overhead_cycles.max(f64::MIN_POSITIVE),
            });
        }
        let incoming_packets = batch.len() as u64;

        // Measurement interval bookkeeping: close the previous interval when
        // the new batch belongs to a different one.
        let interval = batch.measurement_interval(self.config.measurement_interval_us);
        let interval_outputs =
            if self.current_interval.is_some() && self.current_interval != Some(interval) {
                Some(self.close_interval())
            } else {
                None
            };
        self.current_interval = Some(interval);

        // Capture buffer: drop the overflow fraction without control. From
        // here on the bin is processed through zero-copy views sharing the
        // incoming batch's packet store. The overflow path materialises the
        // admitted packets into a fresh store (one copy, as pre-refactor) so
        // the per-batch caches built below — aggregate hashes, flow keys —
        // cover only admitted packets instead of hashing traffic that was
        // just dropped.
        let drop_fraction = self.buffer.admit(incoming_packets);
        let post_drop = if drop_fraction > 0.0 {
            let keep = 1.0 - drop_fraction;
            let (kept, _) =
                packet_sample_with(&batch.view(), keep, &mut self.rng, &mut self.shed_pool);
            kept.materialize().view()
        } else {
            batch.view()
        };
        let uncontrolled_drops = incoming_packets - post_drop.len() as u64;

        // Feature extraction over the full (post-drop) batch. This is where
        // the per-packet aggregate hashes are materialised and cached on the
        // batch; every per-query re-extraction below reuses them. The ten
        // aggregates are independent bitmap sets, so the extraction is
        // sharded per aggregate across the execution plane (bit-identical to
        // the fused pass — inserts into one bitmap commute).
        let workers = self.config.workers;
        let mut dispatch_wall_ns = 0u64;
        // lint:allow(telemetry-clock): dispatch wall time is ExecStats telemetry; the merge stays registration-ordered
        let dispatch_start = Instant::now();
        let mut shards = self.extractor.shard(&post_drop);
        exec::run_tasks_into(
            workers,
            &mut shards,
            |shard| {
                // The first shard to touch the batch builds the shared hash
                // cache inside its `OnceLock` init; late shards block on it
                // briefly and then read, so the single-pass build still
                // happens exactly once.
                shard.process(&post_drop);
            },
            &mut self.extract_timings,
        );
        let (features, extraction_ops) = FeatureExtractor::finish_shards(&post_drop, &shards);
        dispatch_wall_ns += dispatch_start.elapsed().as_nanos() as u64;
        let mut prediction_cycles = extraction_ops * FEATURE_OP_CYCLES;

        // Per-query predictions of the full-batch cost. Every predictor owns
        // its history and reads only the shared feature vector, so the
        // predictions — FCBF selection plus an OLS solve each under the
        // default MLR — are fanned out across the execution plane; the merge
        // below collects values and cost accounting in registration order,
        // so the result is bit-identical to the sequential loop.
        struct PredictTask<'a> {
            predictor: &'a mut Box<dyn Predictor>,
            penalized: bool,
            features: &'a FeatureVector,
            predicted: f64,
            cost_operations: u64,
        }
        let mut predict_tasks: Vec<PredictTask> = self
            .queries
            .iter_mut()
            .map(|registered| PredictTask {
                predictor: &mut registered.exec.predictor,
                penalized: registered.penalty_remaining > 0,
                features: &features,
                predicted: 0.0,
                cost_operations: 0,
            })
            .collect();
        // lint:allow(telemetry-clock): dispatch wall time is ExecStats telemetry only
        let dispatch_start = Instant::now();
        exec::run_tasks_into(
            workers,
            &mut predict_tasks,
            |task| {
                if !task.penalized {
                    task.predicted = task.predictor.predict(task.features);
                    task.cost_operations = task.predictor.last_cost_operations();
                }
            },
            &mut self.predict_timings,
        );
        dispatch_wall_ns += dispatch_start.elapsed().as_nanos() as u64;
        let mut predictions = Vec::with_capacity(predict_tasks.len());
        for task in &predict_tasks {
            prediction_cycles += task.cost_operations * PREDICT_OP_CYCLES;
            predictions.push(task.predicted);
        }
        drop(predict_tasks);
        let predicted_total: f64 = predictions.iter().sum();

        // For oracle-style policies: measure each query's true full-batch
        // cycles on a shadow twin fed the unsampled stream. The shadow work
        // models an idealised upper bound and is not charged to the bin.
        // Every twin is independent deterministic state, so the measurements
        // are fanned out across the execution plane and collected by index.
        let measured_full: Option<Vec<f64>> = if self.policy.needs_measured_cycles() {
            struct ShadowTask<'a> {
                shadow: Option<&'a mut Box<dyn Query>>,
                fallback: f64,
                cycles: f64,
            }
            let mut tasks: Vec<ShadowTask> = self
                .queries
                .iter_mut()
                .zip(&predictions)
                .map(|(registered, &fallback)| ShadowTask {
                    shadow: registered.exec.shadow.as_mut(),
                    fallback,
                    cycles: 0.0,
                })
                .collect();
            // lint:allow(telemetry-clock): shadow dispatch wall time is ExecStats telemetry only
            let dispatch_start = Instant::now();
            exec::run_tasks_into(
                workers,
                &mut tasks,
                |task| {
                    task.cycles = match task.shadow.as_mut() {
                        Some(shadow) => {
                            let mut meter = CycleMeter::new();
                            shadow.process_batch(&post_drop, 1.0, &mut meter);
                            meter.cycles() as f64
                        }
                        None => task.fallback,
                    };
                },
                &mut self.shadow_timings,
            );
            dispatch_wall_ns += dispatch_start.elapsed().as_nanos() as u64;
            Some(tasks.into_iter().map(|task| task.cycles).collect())
        } else {
            self.shadow_timings.clear();
            None
        };

        // Decide the per-query sampling rates: hand the control policy
        // everything the monitor knows about the bin.
        let platform_cycles = self.config.platform_overhead_cycles;
        let delay = self.buffer.delay_cycles();
        let rtthresh = if self.config.buffer_discovery { self.rtthresh } else { 0.0 };
        let available_cycles = self.config.capacity_cycles_per_bin
            - (platform_cycles + prediction_cycles as f64)
            + (rtthresh - delay);
        let demands: Vec<QueryDemand> = predictions
            .iter()
            .zip(&self.queries)
            .map(|(&prediction, registered)| {
                // Chapter 6 correction: custom queries that habitually
                // overuse their allocation are charged for it.
                let corrected = if registered.shedding == SheddingMethod::Custom {
                    prediction * registered.overuse_ratio.max(1.0)
                } else {
                    prediction
                };
                QueryDemand::new(corrected, registered.min_rate)
            })
            .collect();
        let context = ControlContext {
            bin_index: batch.bin_index,
            predictions: &predictions,
            demands: &demands,
            available_cycles,
            error_ewma: self.error_ewma,
            shed_cycles_ewma: self.shed_cycles_ewma,
            prev_mean_rate: self.reactive_rate,
            prev_total_cycles: self.reactive_consumed,
            prev_query_cycles: self.reactive_query_cycles,
            uncontrolled_drops,
            rate_floor: self.config.reactive_min_rate,
            measured_cycles: measured_full.as_deref(),
        };
        let decision = self.policy.decide(&context).sanitized(&demands);
        let rates = &decision.rates;

        // Run every query on its (possibly sampled) share of the batch, in
        // three phases (see DESIGN.md, "Execution plane"):
        //
        // 1. *Plan* (sequential, registration order): penalty accounting,
        //    flow-hasher refresh, RNG-driven shed-view construction and the
        //    measurement-noise pre-draw — everything whose stream order the
        //    sequential path fixed.
        // 2. *Dispatch* (parallel): per-query sampled re-extraction, the
        //    query run, noise application and the predictor feedback, each
        //    task confined to its own query's execution state.
        // 3. *Merge* (sequential, registration order): cycle sums, Chapter 6
        //    enforcement and the per-query records.
        //
        // Because phase 2 receives fully determined inputs and only writes
        // per-task state, the merged output is bit-identical to the
        // sequential path for any worker count.
        /// How a task obtains the (possibly sampled) view it processes.
        enum ShedView<'a> {
            /// Fully determined in the plan phase: the full batch, a custom
            /// query's full batch, or an RNG-driven packet sample whose draws
            /// had to stay in plan order.
            Ready(BatchView),
            /// Flow-sample the post-drop view inside the worker: H3 hashing
            /// over the shared flow keys is deterministic per query, so it
            /// consumes no plan-ordered resource.
            FlowSampled(&'a H3Hasher),
        }
        struct RunTask<'a> {
            exec: &'a mut QueryExecState,
            shedding: SheddingMethod,
            post_drop: &'a BatchView,
            view: ShedView<'a>,
            needs_reextract: bool,
            rate: f64,
            predicted: f64,
            noise: NoiseDraw,
            features: &'a FeatureVector,
            // Outputs, filled by the worker.
            measured: f64,
            outlier: bool,
            delivered_packets: u64,
            reextract_ops: u64,
        }
        /// What the plan decided for one query, in registration order.
        enum Planned {
            /// Not run this bin; the record is already complete.
            Skip(QueryBinRecord),
            /// Run as the task at this index of the dispatch set.
            Run(usize),
        }

        let mut planned: Vec<Planned> = Vec::with_capacity(self.queries.len());
        let mut tasks: Vec<RunTask> = Vec::with_capacity(self.queries.len());
        let mut shedding_cycles = 0u64;
        let mut unsampled_accumulator = 0u64;
        let seed = self.config.seed;
        // Split the monitor's fields so the per-query execution states can be
        // borrowed into tasks while the plan keeps using the RNG and noise
        // streams.
        let queries = &mut self.queries;
        let rng = &mut self.rng;
        let noise = &mut self.noise;
        let shed_pool = &mut self.shed_pool;

        for (index, registered) in queries.iter_mut().enumerate() {
            let rate = rates[index];
            let predicted = predictions[index];

            if registered.penalty_remaining > 0 {
                registered.penalty_remaining -= 1;
                planned.push(Planned::Skip(QueryBinRecord {
                    id: registered.id,
                    name: registered.label.clone(),
                    sampling_rate: 0.0,
                    predicted_cycles: predicted,
                    measured_cycles: 0.0,
                    delivered_packets: 0,
                    disabled: true,
                }));
                continue;
            }
            if rate <= 0.0 {
                planned.push(Planned::Skip(QueryBinRecord {
                    id: registered.id,
                    name: registered.label.clone(),
                    sampling_rate: 0.0,
                    predicted_cycles: predicted,
                    measured_cycles: 0.0,
                    delivered_packets: 0,
                    disabled: true,
                }));
                unsampled_accumulator += post_drop.len() as u64;
                continue;
            }

            // Refresh the flow-sampling hash function once per interval so
            // selection cannot be evaded and is unbiased (Section 4.2). Keyed
            // by the stable handle, not the position, so deregistrations do
            // not reshuffle the selection of the surviving queries.
            if registered.shedding == SheddingMethod::FlowSampling
                && registered.hasher_generation != interval
            {
                registered.flow_hasher =
                    H3Hasher::new(13, seed ^ (interval << 8) ^ registered.id.0);
                registered.hasher_generation = interval;
            }

            // Construct the shed view. Packet sampling draws from the shared
            // RNG, so it stays on the plan phase in registration order — the
            // stream is consumed exactly as the sequential path does; flow
            // sampling is deterministic per query and is deferred into the
            // worker task.
            let (view, needs_reextract) = if rate >= 1.0 {
                (ShedView::Ready(post_drop.clone()), false)
            } else {
                match registered.shedding {
                    SheddingMethod::PacketSampling => {
                        let (sampled, _) = packet_sample_with(&post_drop, rate, rng, shed_pool);
                        shedding_cycles += post_drop.len() as u64 * SAMPLING_TEST_CYCLES;
                        (ShedView::Ready(sampled), true)
                    }
                    SheddingMethod::FlowSampling => {
                        shedding_cycles += post_drop.len() as u64 * SAMPLING_TEST_CYCLES;
                        (ShedView::FlowSampled(&registered.flow_hasher), true)
                    }
                    SheddingMethod::Custom => (ShedView::Ready(post_drop.clone()), false),
                }
            };

            planned.push(Planned::Run(tasks.len()));
            tasks.push(RunTask {
                exec: &mut registered.exec,
                shedding: registered.shedding,
                post_drop: &post_drop,
                view,
                needs_reextract,
                rate,
                predicted,
                // Pre-drawn in registration order: the noise RNG consumes a
                // configuration-fixed number of samples per running query, so
                // the stream matches the sequential path bit for bit.
                noise: noise.draw(),
                features: &features,
                measured: 0.0,
                outlier: false,
                delivered_packets: 0,
                reextract_ops: 0,
            });
        }

        // Dispatch the expensive tail across the execution plane.
        // lint:allow(telemetry-clock): tail dispatch wall time is ExecStats telemetry only
        let dispatch_start = Instant::now();
        exec::run_tasks_into(
            workers,
            &mut tasks,
            |task| {
                let delivered = match &task.view {
                    ShedView::Ready(view) => view.clone(),
                    ShedView::FlowSampled(hasher) => {
                        flow_sample_with(
                            task.post_drop,
                            task.rate,
                            hasher,
                            &mut task.exec.shed_pool,
                        )
                        .0
                    }
                };
                task.delivered_packets = delivered.len() as u64;

                // Recompute the features over the sampled stream so the MLR
                // history stays consistent (Section 4.3); the per-query extractor
                // belongs to this task alone.
                let sampled_features = if task.needs_reextract {
                    let (extracted, ops) = task.exec.sampled_extractor.extract_view(&delivered);
                    task.reextract_ops = ops;
                    Some(extracted)
                } else {
                    None
                };

                // Run the query and measure its cycles.
                let mut meter = CycleMeter::new();
                task.exec.query.process_batch(&delivered, task.rate, &mut meter);
                let (measured, outlier) = task.noise.apply(meter.cycles());
                let measured = measured as f64;

                // Feed the observation back into the prediction history. For
                // custom shedding the assigned rate plays the same role as a
                // sampling rate: the query is expected to scale its work by it.
                let expected = task.predicted * task.rate;
                let history_features: &FeatureVector =
                    sampled_features.as_ref().unwrap_or(task.features);
                if outlier {
                    // Replace corrupted measurements with the prediction
                    // (Section 3.2.4 / 4.4).
                    task.exec.predictor.observe_corrupted(history_features, expected.max(0.0));
                } else if task.shedding == SheddingMethod::Custom && task.rate < 1.0 {
                    // Custom shedding: the history models the full-batch cost, so
                    // scale the measurement by the requested rate.
                    task.exec.predictor.observe(task.features, measured / task.rate.max(1e-6));
                } else {
                    task.exec.predictor.observe(history_features, measured);
                }
                task.measured = measured;
                task.outlier = outlier;
            },
            &mut self.tail_timings,
        );
        dispatch_wall_ns += dispatch_start.elapsed().as_nanos() as u64;

        // Collect the task outputs, releasing the borrows on the query states.
        struct TaskOutput {
            rate: f64,
            predicted: f64,
            measured: f64,
            outlier: bool,
            delivered_packets: u64,
            reextract_ops: u64,
        }
        let outputs: Vec<TaskOutput> = tasks
            .into_iter()
            .map(|task| TaskOutput {
                rate: task.rate,
                predicted: task.predicted,
                measured: task.measured,
                outlier: task.outlier,
                delivered_packets: task.delivered_packets,
                reextract_ops: task.reextract_ops,
            })
            .collect();

        // Merge in registration order: every sum below folds in exactly the
        // sequence the sequential path used.
        let mut query_cycles_total = 0.0;
        let mut query_records = Vec::with_capacity(self.queries.len());
        for (registered, entry) in self.queries.iter_mut().zip(planned) {
            let task_index = match entry {
                Planned::Skip(record) => {
                    query_records.push(record);
                    continue;
                }
                Planned::Run(task_index) => task_index,
            };
            let output = &outputs[task_index];
            shedding_cycles += output.reextract_ops * REEXTRACT_OP_CYCLES;
            unsampled_accumulator += post_drop.len() as u64 - output.delivered_packets;
            query_cycles_total += output.measured;

            // Chapter 6 enforcement for custom load shedding queries.
            let expected = output.predicted * output.rate;
            if registered.shedding == SheddingMethod::Custom && expected > 0.0 && !output.outlier {
                let overuse = output.measured / expected;
                registered.overuse_ratio = 0.3 * overuse + 0.7 * registered.overuse_ratio;
                if overuse > 1.0 + self.config.enforcement.tolerance {
                    registered.violations += 1;
                    if registered.violations >= self.config.enforcement.max_violations {
                        registered.penalty_remaining = self.config.enforcement.penalty_bins;
                        registered.violations = 0;
                    }
                } else {
                    registered.violations = 0;
                }
            }

            query_records.push(QueryBinRecord {
                id: registered.id,
                name: registered.label.clone(),
                sampling_rate: output.rate,
                predicted_cycles: output.predicted,
                measured_cycles: output.measured,
                delivered_packets: output.delivered_packets,
                disabled: false,
            });
        }

        // Close the loop: smooth the prediction error and the shedding cost,
        // account the bin against the capture buffer and update the buffer
        // discovery threshold.
        let shedding_cycles_f = shedding_cycles as f64;
        let alpha = self.config.ewma_alpha;
        self.shed_cycles_ewma = alpha * shedding_cycles_f + (1.0 - alpha) * self.shed_cycles_ewma;
        let expected_total: f64 =
            predictions.iter().zip(rates.iter()).map(|(prediction, rate)| prediction * rate).sum();
        if query_cycles_total > 0.0 && expected_total > 0.0 {
            let observed_error = (1.0 - expected_total / query_cycles_total).max(0.0);
            self.error_ewma = alpha * observed_error + (1.0 - alpha) * self.error_ewma;
        }

        let total_cycles =
            query_cycles_total + prediction_cycles as f64 + shedding_cycles_f + platform_cycles;
        self.buffer.account_bin(total_cycles);
        self.update_buffer_discovery(total_cycles);

        // Remember the reactive state for the next bin.
        let mean_rate =
            if rates.is_empty() { 1.0 } else { rates.iter().sum::<f64>() / rates.len() as f64 };
        self.reactive_rate = mean_rate.max(self.config.reactive_min_rate);
        self.reactive_consumed = total_cycles;
        self.reactive_query_cycles = query_cycles_total;

        let unsampled_packets = if self.queries.is_empty() {
            0
        } else {
            unsampled_accumulator / self.queries.len() as u64
        };

        // Execution-plane telemetry: sequential time is everything this call
        // spent outside its dispatches.
        let total_bin_ns = bin_start.elapsed().as_nanos() as u64;
        self.exec_stats.fold_bin(
            total_bin_ns.saturating_sub(dispatch_wall_ns),
            &[
                self.extract_timings.ns(),
                self.predict_timings.ns(),
                self.shadow_timings.ns(),
                self.tail_timings.ns(),
            ],
        );

        Ok(BinRecord {
            bin_index: batch.bin_index,
            incoming_packets,
            uncontrolled_drops,
            unsampled_packets,
            available_cycles,
            predicted_cycles: predicted_total,
            query_cycles: query_cycles_total,
            prediction_cycles: prediction_cycles as f64,
            shedding_cycles: shedding_cycles_f,
            platform_cycles,
            buffer_occupation: self.buffer.occupation(),
            queries: query_records,
            interval_outputs,
            decision,
        })
    }

    /// Slow-start-like buffer discovery (Section 4.1).
    fn update_buffer_discovery(&mut self, total_cycles: f64) {
        if !self.config.buffer_discovery {
            return;
        }
        let capacity = self.config.capacity_cycles_per_bin;
        if self.buffer.occupation() > BUFFER_UNSTABLE_OCCUPATION {
            // The system is turning unstable: back off.
            self.rtthresh_ssthresh = (self.rtthresh / 2.0).max(capacity * 0.01);
            self.rtthresh = 0.0;
            return;
        }
        if total_cycles < capacity {
            let increment = capacity * 0.01;
            if self.rtthresh < self.rtthresh_ssthresh {
                // Exponential growth while below the slow-start threshold.
                self.rtthresh = (self.rtthresh * 2.0).max(increment);
            } else {
                self.rtthresh += increment;
            }
            self.rtthresh = self.rtthresh.min(capacity * RTTHRESH_MAX_FRACTION);
        }
    }

    /// Collects the per-query outputs for the interval that just ended.
    fn close_interval(&mut self) -> Vec<(String, QueryOutput)> {
        self.queries
            .iter_mut()
            .map(|registered| {
                // Shadow twins close intervals on the same boundaries so
                // their per-interval state cannot grow without bound; their
                // outputs are discarded (only their cycles matter).
                if let Some(shadow) = registered.exec.shadow.as_mut() {
                    let _ = shadow.end_interval();
                }
                (registered.label.clone(), registered.exec.query.end_interval())
            })
            .collect()
    }

    /// Serializes the monitor's *essential* state — everything a restored
    /// process needs to continue the run bit-identically: sketch tables and
    /// predictor histories, both RNG positions, the control-loop EWMAs, the
    /// buffer-discovery thresholds, the capture backlog and every registered
    /// query's enforcement counters. Derivable state (H3 hashers, scratch
    /// buffers, execution telemetry) is reconstructed on load instead of
    /// stored.
    ///
    /// Fails with [`StateError::Unsupported`] when a query was registered
    /// through [`Monitor::register_instance`] (no [`QuerySpec`] to rebuild it
    /// from) or runs a query/predictor without checkpoint support.
    pub fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.str(&self.policy.name());
        self.extractor.save_state(writer);
        self.buffer.save_state(writer);
        for word in self.rng.state() {
            writer.u64(word);
        }
        for word in self.noise.rng_state() {
            writer.u64(word);
        }
        writer.f64(self.error_ewma);
        writer.f64(self.shed_cycles_ewma);
        writer.f64(self.rtthresh);
        writer.f64(self.rtthresh_ssthresh);
        writer.f64(self.reactive_rate);
        writer.f64(self.reactive_consumed);
        writer.f64(self.reactive_query_cycles);
        writer.opt_u64(self.current_interval);
        self.policy.save_state(writer)?;
        writer.usize(self.queries.len());
        for registered in &self.queries {
            let spec = registered.spec.as_ref().ok_or_else(|| {
                StateError::unsupported(format!(
                    "query '{}' was registered as a bare instance (no QuerySpec to rebuild from)",
                    registered.label
                ))
            })?;
            writer.u64(registered.id.0);
            writer.str(&registered.label);
            save_spec(spec, writer);
            writer.f64(registered.min_rate);
            writer.u64(registered.hasher_generation);
            writer.f64(registered.overuse_ratio);
            writer.u32(registered.violations);
            writer.u32(registered.penalty_remaining);
            registered.exec.query.save_state(writer)?;
            match &registered.exec.shadow {
                None => writer.bool(false),
                Some(shadow) => {
                    writer.bool(true);
                    shadow.save_state(writer)?;
                }
            }
            registered.exec.predictor.save_state(writer)?;
            registered.exec.sampled_extractor.save_state(writer);
        }
        writer.u64(self.next_query_id);
        Ok(())
    }

    /// Restores state written by [`Monitor::save_state`] into a monitor
    /// freshly built from the *same* configuration (and the same custom
    /// policy, when one was installed). Any queries registered on `self`
    /// before the call are discarded; the snapshot's registry — ids, labels
    /// and all per-query state — replaces them wholesale.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        let policy_name = reader.str()?;
        if policy_name != self.policy.name() {
            return Err(StateError::mismatch("policy name", policy_name, self.policy.name()));
        }
        self.extractor.load_state(reader)?;
        self.buffer.load_state(reader)?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = reader.u64()?;
        }
        self.rng = StdRng::from_state(rng_state);
        let mut noise_state = [0u64; 4];
        for word in &mut noise_state {
            *word = reader.u64()?;
        }
        self.noise.restore_rng(noise_state);
        self.error_ewma = reader.f64()?;
        self.shed_cycles_ewma = reader.f64()?;
        self.rtthresh = reader.f64()?;
        self.rtthresh_ssthresh = reader.f64()?;
        self.reactive_rate = reader.f64()?;
        self.reactive_consumed = reader.f64()?;
        self.reactive_query_cycles = reader.f64()?;
        self.current_interval = reader.opt_u64()?;
        self.policy.load_state(reader)?;
        let count = reader.usize()?;
        let needs_shadow = self.policy.needs_measured_cycles();
        self.queries.clear();
        for _ in 0..count {
            let id = QueryId(reader.u64()?);
            let label = reader.str()?;
            let spec = load_spec(reader)?;
            let min_rate = reader.f64()?;
            let hasher_generation = reader.u64()?;
            let overuse_ratio = reader.f64()?;
            let violations = reader.u32()?;
            let penalty_remaining = reader.u32()?;
            let mut query = build_query_from_spec(&spec);
            query.load_state(reader)?;
            let shadow = if reader.bool()? {
                if !needs_shadow {
                    return Err(StateError::corrupt(format!(
                        "query '{label}' carries shadow state but policy \
                         '{policy_name}' does not run shadows"
                    )));
                }
                let mut shadow = build_query_from_spec(&spec);
                shadow.load_state(reader)?;
                Some(shadow)
            } else {
                None
            };
            let mut predictor = self.predictor_factory.make();
            predictor.load_state(reader)?;
            let mut sampled_extractor = FeatureExtractor::new(ExtractorConfig {
                measurement_interval_us: self.config.measurement_interval_us,
                ..ExtractorConfig::default()
            });
            sampled_extractor.load_state(reader)?;
            // The flow hasher is derivable: its seed depends only on the
            // stable id and the interval of the last refresh (generation 0 is
            // the registration-time draw — a refresh at interval 0 is
            // impossible because the generations would already match).
            let flow_hasher = if hasher_generation == 0 {
                H3Hasher::new(13, self.config.seed ^ (id.0 + 1))
            } else {
                H3Hasher::new(13, self.config.seed ^ (hasher_generation << 8) ^ id.0)
            };
            self.queries.push(RegisteredQuery {
                id,
                label,
                shedding: query.preferred_shedding(),
                min_rate,
                spec: Some(spec),
                flow_hasher,
                hasher_generation,
                overuse_ratio,
                violations,
                penalty_remaining,
                exec: QueryExecState {
                    query,
                    shadow,
                    predictor,
                    sampled_extractor,
                    shed_pool: KeepListPool::new(),
                },
            });
        }
        self.next_query_id = reader.u64()?;
        if let Some(max_id) = self.queries.iter().map(|q| q.id.0).max() {
            if self.next_query_id <= max_id {
                return Err(StateError::corrupt(format!(
                    "next_query_id {} does not exceed the largest restored id {max_id}",
                    self.next_query_id
                )));
            }
        }
        Ok(())
    }
}

/// Writes a [`QuerySpec`] by stable names (never enum ordinals), so `.nsck`
/// snapshots survive enum reordering.
fn save_spec(spec: &QuerySpec, writer: &mut StateWriter) {
    writer.str(spec.kind.name());
    writer.opt_str(spec.label.as_deref());
    writer.opt_f64(spec.min_sampling_rate);
    writer.opt_str(spec.custom_behavior.map(CustomBehavior::name));
}

/// Reads a [`QuerySpec`] written by [`save_spec`].
fn load_spec(reader: &mut StateReader<'_>) -> Result<QuerySpec, StateError> {
    let kind_name = reader.str()?;
    let kind = QueryKind::from_name(&kind_name)
        .ok_or_else(|| StateError::corrupt(format!("unknown query kind {kind_name:?}")))?;
    let label = reader.opt_str()?;
    let min_sampling_rate = reader.opt_f64()?;
    let custom_behavior = match reader.opt_str()? {
        None => None,
        Some(name) => Some(CustomBehavior::from_name(&name).ok_or_else(|| {
            StateError::corrupt(format!("unknown custom shedding behavior {name:?}"))
        })?),
    };
    Ok(QuerySpec { kind, label, min_sampling_rate, custom_behavior })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AllocationPolicy, Strategy};
    use netshed_queries::QueryKind;
    use netshed_trace::{TraceConfig, TraceGenerator};

    fn small_trace(batches: usize, mean_packets: f64) -> Vec<Batch> {
        let config = TraceConfig::default()
            .with_seed(3)
            .with_mean_packets_per_batch(mean_packets)
            .with_payloads(true);
        TraceGenerator::new(config).batches(batches)
    }

    fn monitor_with_queries(config: MonitorConfig, kinds: &[QueryKind]) -> Monitor {
        let mut monitor = Monitor::new(config);
        for kind in kinds {
            monitor.register(&QuerySpec::new(*kind)).expect("valid spec");
        }
        monitor
    }

    /// Drives batches through a monitor while folding everything emitted
    /// into a digest observer (the `Monitor::run` loop, minus the source).
    fn drive(
        monitor: &mut Monitor,
        observer: &mut crate::digest::DigestObserver,
        batches: &[Batch],
    ) {
        use crate::observer::RunObserver;
        for batch in batches {
            let record = monitor.process_batch(batch).expect("batch");
            if let Some(outputs) = &record.interval_outputs {
                observer.on_interval(outputs);
            }
            observer.on_decision(record.bin_index, &record.decision);
            observer.on_bin(&record);
        }
    }

    /// Flushes the final interval into the observer, ending the run.
    fn flush(monitor: &mut Monitor, observer: &mut crate::digest::DigestObserver) {
        use crate::observer::RunObserver;
        let outputs = monitor.finish_interval();
        observer.on_interval(&outputs);
    }

    /// Measures the unconstrained total demand (queries + overheads) of a
    /// query set over a few batches.
    fn measure_demand(kinds: &[QueryKind], batches: &[Batch]) -> f64 {
        let config = MonitorConfig::default()
            .with_capacity(1e12)
            .with_strategy(Strategy::NoShedding)
            .without_noise();
        let mut monitor = monitor_with_queries(config, kinds);
        let mut total = 0.0;
        for batch in batches {
            total += monitor.process_batch(batch).expect("batch").total_cycles();
        }
        total / batches.len() as f64
    }

    #[test]
    fn no_shedding_with_ample_capacity_processes_everything() {
        let batches = small_trace(20, 200.0);
        let config = MonitorConfig::default().with_capacity(1e12).without_noise();
        let mut monitor = monitor_with_queries(config, &[QueryKind::Counter, QueryKind::Flows]);
        for batch in &batches {
            let record = monitor.process_batch(batch).expect("batch");
            assert_eq!(record.uncontrolled_drops, 0);
            assert!(record.queries.iter().all(|q| (q.sampling_rate - 1.0).abs() < 1e-9));
        }
        assert_eq!(monitor.uncontrolled_drops(), 0);
    }

    #[test]
    fn predictive_shedding_keeps_cycles_near_capacity_under_overload() {
        let batches = small_trace(120, 400.0);
        // The seven-query set of the Chapter 4 evaluation.
        let kinds = QueryKind::CHAPTER4_SET;
        let demand = measure_demand(&kinds, &batches[..20]);
        // Capacity set to half the demand: the system is overloaded by 2x.
        let capacity = demand / 2.0;
        let config = MonitorConfig::default()
            .with_capacity(capacity)
            .with_strategy(Strategy::Predictive(AllocationPolicy::EqualRates))
            .without_noise();
        let mut monitor = monitor_with_queries(config, &kinds);
        let mut steady_state_cycles = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            let record = monitor.process_batch(batch).expect("batch");
            // Give the predictor a warm-up period before judging.
            if i > 30 {
                steady_state_cycles.push(record.total_cycles());
            }
        }
        // Single bins may exceed the capacity thanks to the buffer discovery
        // mechanism, but the steady-state average must stay near the capacity
        // for the system to be stable.
        let mean = steady_state_cycles.iter().sum::<f64>() / steady_state_cycles.len() as f64;
        assert!(
            mean <= capacity * 1.25,
            "predictive shedding should keep average usage near capacity \
             (mean = {mean:.0}, capacity = {capacity:.0})"
        );
        assert_eq!(monitor.uncontrolled_drops(), 0, "predictive shedding should avoid drops");
    }

    #[test]
    fn no_shedding_under_overload_drops_packets_uncontrolled() {
        let batches = small_trace(80, 400.0);
        let demand = measure_demand(&[QueryKind::Flows, QueryKind::PatternSearch], &batches[..20]);
        let config = MonitorConfig::default()
            .with_capacity(demand / 2.0)
            .with_strategy(Strategy::NoShedding)
            .without_noise();
        let mut monitor =
            monitor_with_queries(config, &[QueryKind::Flows, QueryKind::PatternSearch]);
        for batch in &batches {
            monitor.process_batch(batch).expect("batch");
        }
        assert!(
            monitor.uncontrolled_drops() > 0,
            "an overloaded system without load shedding must drop packets"
        );
    }

    #[test]
    fn interval_outputs_are_emitted_once_per_interval() {
        let batches = small_trace(25, 100.0);
        let config = MonitorConfig::default().with_capacity(1e12).without_noise();
        let mut monitor = monitor_with_queries(config, &[QueryKind::Counter]);
        let mut interval_count = 0;
        for batch in &batches {
            if monitor.process_batch(batch).expect("batch").interval_outputs.is_some() {
                interval_count += 1;
            }
        }
        let final_outputs = monitor.finish_interval();
        assert_eq!(final_outputs.len(), 1);
        // 25 batches of 100 ms = 2.5 s → two closed intervals mid-run.
        assert_eq!(interval_count, 2);
    }

    #[test]
    fn min_rate_constraints_disable_queries_when_infeasible() {
        let batches = small_trace(80, 400.0);
        let kinds = QueryKind::CHAPTER4_SET;
        let demand = measure_demand(&kinds, &batches[..20]);
        let config = MonitorConfig::default()
            // Severe overload: only a third of the demand fits.
            .with_capacity(demand / 3.0)
            .with_strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
            .without_noise();
        let mut monitor = monitor_with_queries(config, &kinds);
        let topk_index = kinds.iter().position(|k| *k == QueryKind::TopK).unwrap();
        let counter_index = kinds.iter().position(|k| *k == QueryKind::Counter).unwrap();
        let mut topk_disabled = 0;
        let mut counter_disabled = 0;
        for (i, batch) in batches.iter().enumerate() {
            let record = monitor.process_batch(batch).expect("batch");
            if i > 30 {
                if record.queries[topk_index].disabled {
                    topk_disabled += 1;
                }
                if record.queries[counter_index].disabled {
                    counter_disabled += 1;
                }
            }
        }
        // top-k demands at least 57% sampling, counter only 3%: under severe
        // overload the max-min fair allocation must disable top-k much more
        // often than counter.
        assert!(
            topk_disabled > counter_disabled * 2,
            "the expensive, high-minimum query should be disabled much more often \
             ({topk_disabled} vs {counter_disabled})"
        );
    }

    #[test]
    fn query_arrival_mid_run_is_supported() {
        let batches = small_trace(30, 100.0);
        let config = MonitorConfig::default().with_capacity(1e12).without_noise();
        let mut monitor = monitor_with_queries(config, &[QueryKind::Counter]);
        let mut flows_id = None;
        for (i, batch) in batches.iter().enumerate() {
            if i == 10 {
                flows_id =
                    Some(monitor.register(&QuerySpec::new(QueryKind::Flows)).expect("valid spec"));
            }
            let record = monitor.process_batch(batch).expect("batch");
            if i >= 10 {
                assert_eq!(record.queries.len(), 2);
            }
        }
        let flows_id = flows_id.expect("registered mid-run");
        assert!(monitor.deregister(flows_id).is_ok());
        assert_eq!(
            monitor.deregister(flows_id),
            Err(NetshedError::UnknownQuery(flows_id.to_string()))
        );
    }

    #[test]
    fn empty_batches_and_zero_capacity_are_typed_errors() {
        let config = MonitorConfig::default().with_capacity(1e12).without_noise();
        let mut monitor = monitor_with_queries(config, &[QueryKind::Counter]);
        let empty = Batch::empty(3, 300_000, 100_000);
        assert!(matches!(
            monitor.process_batch(&empty),
            Err(NetshedError::EmptyBatch { bin_index: 3 })
        ));

        let broken = MonitorConfig::default().with_capacity(0.0).without_noise();
        let mut broken_monitor = monitor_with_queries(broken, &[QueryKind::Counter]);
        let batch = &small_trace(1, 50.0)[0];
        assert!(matches!(
            broken_monitor.process_batch(batch),
            Err(NetshedError::CapacityUnderflow { .. })
        ));
    }

    #[test]
    fn reactive_strategy_reduces_rate_after_overload() {
        let batches = small_trace(60, 400.0);
        let demand = measure_demand(&[QueryKind::PatternSearch], &batches[..20]);
        let config = MonitorConfig::default()
            .with_capacity(demand / 2.0)
            .with_strategy(Strategy::Reactive(AllocationPolicy::EqualRates))
            .without_noise();
        let mut monitor = monitor_with_queries(config, &[QueryKind::PatternSearch]);
        let mut sampled_bins = 0;
        for batch in &batches {
            let record = monitor.process_batch(batch).expect("batch");
            if record.mean_sampling_rate() < 0.99 {
                sampled_bins += 1;
            }
        }
        assert!(sampled_bins > 20, "reactive shedding should sample most bins: {sampled_bins}");
    }

    /// Pins the reactive/allocator decision (see DESIGN.md, "Control plane"):
    /// the reactive family honours per-query minimum sampling rates by
    /// routing the Eq. 4.1 global rate through its allocation policy, so the
    /// three `reactive*` variants genuinely differ once a minimum binds —
    /// `eq_srates` disables the violator, the max-min schemes pin it at its
    /// minimum — and stay identical to the historical behaviour otherwise.
    #[test]
    fn reactive_allocation_policy_resolves_binding_minimums() {
        let batches = small_trace(60, 400.0);
        // top-k demands at least 57% sampling; under mild overload the
        // reactive global rate settles below that, so its minimum binds.
        let kinds = [QueryKind::TopK, QueryKind::Counter, QueryKind::PatternSearch];
        let demand = measure_demand(&kinds, &batches[..20]);

        let run = |strategy: Strategy| -> Vec<BinRecord> {
            let config = MonitorConfig::default()
                .with_capacity(demand * 0.8)
                .with_strategy(strategy)
                .without_noise();
            let mut monitor = monitor_with_queries(config, &kinds);
            batches.iter().map(|batch| monitor.process_batch(batch).expect("batch")).collect()
        };

        let eq = run(Strategy::Reactive(AllocationPolicy::EqualRates));
        let pkt = run(Strategy::Reactive(AllocationPolicy::MmfsPkt));

        // eq_srates disables top-k in the bins where its minimum binds ...
        let eq_disabled = eq.iter().filter(|record| record.queries[0].disabled).count();
        assert!(eq_disabled > 5, "eq_srates should disable top-k often ({eq_disabled} bins)");
        // ... while mmfs_pkt pins it at its 0.57 minimum instead.
        let pkt_pinned = pkt
            .iter()
            .filter(|record| {
                !record.queries[0].disabled && (record.queries[0].sampling_rate - 0.57).abs() < 1e-9
            })
            .count();
        assert!(pkt_pinned > 5, "mmfs_pkt should pin top-k at its minimum ({pkt_pinned} bins)");

        // With no binding minimums all reactive variants are bit-identical.
        let free_specs: Vec<QuerySpec> =
            kinds.iter().map(|kind| QuerySpec::new(*kind).with_min_rate(0.0)).collect();
        let run_free = |strategy: Strategy| -> Vec<f64> {
            let config = MonitorConfig::default()
                .with_capacity(demand * 0.8)
                .with_strategy(strategy)
                .without_noise();
            let mut monitor = Monitor::new(config);
            for spec in &free_specs {
                monitor.register(spec).expect("valid spec");
            }
            batches
                .iter()
                .map(|batch| monitor.process_batch(batch).expect("batch").mean_sampling_rate())
                .collect()
        };
        assert_eq!(
            run_free(Strategy::Reactive(AllocationPolicy::EqualRates)),
            run_free(Strategy::Reactive(AllocationPolicy::MmfsPkt)),
            "without binding minimums the reactive variants must not diverge"
        );
    }

    #[test]
    fn oracle_policy_controls_load_without_drops() {
        use crate::policy::OraclePolicy;
        use netshed_fairness::MmfsPkt;

        let batches = small_trace(120, 400.0);
        let kinds = QueryKind::CHAPTER4_SET;
        let demand = measure_demand(&kinds, &batches[..20]);
        let capacity = demand / 2.0;
        let config = MonitorConfig::default().with_capacity(capacity).without_noise();
        let mut monitor = monitor_with_queries(config, &kinds);
        monitor.set_policy(Box::new(OraclePolicy::new(MmfsPkt)));
        assert_eq!(monitor.policy_name(), "oracle_mmfs_pkt");

        let mut steady_state_cycles = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            let record = monitor.process_batch(batch).expect("batch");
            if i > 30 {
                steady_state_cycles.push(record.total_cycles());
            }
        }
        let mean = steady_state_cycles.iter().sum::<f64>() / steady_state_cycles.len() as f64;
        assert!(
            mean <= capacity * 1.25,
            "oracle shedding must keep usage near capacity (mean {mean:.0}, capacity {capacity:.0})"
        );
        assert_eq!(monitor.uncontrolled_drops(), 0, "the oracle must avoid drops");
    }

    #[test]
    fn hysteresis_recovers_more_slowly_than_plain_reactive() {
        use crate::policy::HysteresisReactivePolicy;
        use netshed_fairness::EqualRates;
        use netshed_trace::{Anomaly, AnomalyKind};

        // Normal traffic with a flood between bins 20 and 40: both policies
        // shed hard during the flood; the difference is how fast the rate
        // springs back once it ends.
        let mut generator = TraceGenerator::new(
            TraceConfig::default().with_seed(7).with_mean_packets_per_batch(200.0),
        );
        generator.add_anomaly(Anomaly::new(
            AnomalyKind::DdosFlood { target: 0x0a00_0001 },
            20,
            40,
            2000,
        ));
        let batches = generator.batches(80);
        let spec = QuerySpec::new(QueryKind::Flows).with_min_rate(0.0);
        let demand = measure_demand(&[QueryKind::Flows], &batches[..15]);

        let recovery = 0.2;
        let run = |hysteresis: bool| -> Vec<f64> {
            let config = MonitorConfig::default()
                .with_capacity(demand * 1.5)
                .with_strategy(Strategy::Reactive(AllocationPolicy::EqualRates))
                .without_noise();
            let mut monitor = Monitor::new(config);
            monitor.register(&spec).expect("valid spec");
            if hysteresis {
                monitor.set_policy(Box::new(
                    HysteresisReactivePolicy::new(EqualRates).with_recovery(recovery),
                ));
            }
            batches
                .iter()
                .map(|batch| monitor.process_batch(batch).expect("batch").mean_sampling_rate())
                .collect()
        };
        let plain = run(false);
        let damped = run(true);
        let upswing = |rates: &[f64]| -> f64 {
            rates.windows(2).map(|w| (w[1] - w[0]).max(0.0)).fold(0.0f64, f64::max)
        };
        assert!(
            plain.iter().any(|rate| *rate < 0.6),
            "the flood must force plain reactive to shed ({plain:?})"
        );
        // With no binding minimums the damped global rate moves up by at most
        // `recovery × gap ≤ recovery` per bin; plain snaps back in one bin.
        assert!(
            upswing(&damped) <= recovery + 1e-9,
            "hysteresis must cap the per-bin recovery at {recovery} (saw {:.3})",
            upswing(&damped)
        );
        assert!(
            upswing(&plain) > upswing(&damped),
            "plain reactive should rebound faster ({:.3} vs {:.3})",
            upswing(&plain),
            upswing(&damped)
        );
    }

    /// The checkpoint contract: saving mid-run and restoring into a fresh
    /// process-equivalent monitor continues the run *bit-identically* — the
    /// resumed digest equals the uninterrupted one.
    mod checkpoint {
        use super::*;
        use crate::digest::DigestObserver;

        fn round_trip(
            config: &MonitorConfig,
            kinds: &[QueryKind],
            batches: &[Batch],
            cut: usize,
            policy: impl Fn() -> Option<Box<dyn ControlPolicy>>,
        ) {
            let build = |with_queries: bool| -> Monitor {
                let mut monitor = if with_queries {
                    monitor_with_queries(config.clone(), kinds)
                } else {
                    Monitor::new(config.clone())
                };
                if let Some(policy) = policy() {
                    monitor.set_policy(policy);
                }
                monitor
            };

            // Uninterrupted reference run.
            let mut reference = build(true);
            let mut reference_digest = DigestObserver::new();
            drive(&mut reference, &mut reference_digest, batches);
            flush(&mut reference, &mut reference_digest);

            // Run to the cut, serialize monitor + digest, drop everything.
            let mut first = build(true);
            let mut digest = DigestObserver::new();
            drive(&mut first, &mut digest, &batches[..cut]);
            let mut writer = StateWriter::new();
            first.save_state(&mut writer).expect("save");
            digest.save_state(&mut writer);
            let bytes = writer.into_bytes();
            drop(first);

            // Restore into a monitor with no queries registered and resume.
            let mut resumed = build(false);
            let mut reader = StateReader::new(&bytes);
            resumed.load_state(&mut reader).expect("load");
            let mut resumed_digest = DigestObserver::new();
            resumed_digest.load_state(&mut reader).expect("digest state");
            reader.finish().expect("no trailing bytes");
            assert_eq!(resumed.query_handles(), reference.query_handles());
            drive(&mut resumed, &mut resumed_digest, &batches[cut..]);
            flush(&mut resumed, &mut resumed_digest);

            assert_eq!(
                resumed_digest.digest(),
                reference_digest.digest(),
                "a restored run must be bit-identical to the uninterrupted one"
            );
        }

        #[test]
        fn predictive_run_resumes_bit_identically() {
            // Noise stays ON: both RNG positions must survive the round
            // trip. Flow- and packet-sampled queries exercise the hasher
            // reconstruction and the plan-phase RNG stream.
            let kinds =
                [QueryKind::Flows, QueryKind::TopK, QueryKind::PatternSearch, QueryKind::Counter];
            let batches = small_trace(48, 350.0);
            let demand = measure_demand(&kinds, &batches[..16]);
            let config =
                MonitorConfig::default().with_capacity(demand / 2.0).with_seed(11).with_workers(1);
            round_trip(&config, &kinds, &batches, 20, || None);
        }

        #[test]
        fn hysteresis_policy_state_survives_the_checkpoint() {
            use crate::policy::HysteresisReactivePolicy;
            use netshed_fairness::EqualRates;

            let kinds = [QueryKind::Flows, QueryKind::Counter];
            let batches = small_trace(40, 350.0);
            let demand = measure_demand(&kinds, &batches[..12]);
            let config = MonitorConfig::default().with_capacity(demand / 2.0).without_noise();
            // Cut mid-recovery so a wrong `current` would diverge instantly.
            round_trip(&config, &kinds, &batches, 15, || {
                Some(Box::new(HysteresisReactivePolicy::new(EqualRates)))
            });
        }

        #[test]
        fn oracle_shadow_state_survives_the_checkpoint() {
            use crate::policy::OraclePolicy;
            use netshed_fairness::MmfsPkt;

            let kinds = [QueryKind::Flows, QueryKind::PatternSearch];
            let batches = small_trace(36, 300.0);
            let demand = measure_demand(&kinds, &batches[..12]);
            let config = MonitorConfig::default().with_capacity(demand / 2.0).without_noise();
            round_trip(&config, &kinds, &batches, 17, || {
                Some(Box::new(OraclePolicy::new(MmfsPkt)))
            });
        }

        #[test]
        fn restore_rejects_a_different_policy_naming_both() {
            let config = MonitorConfig::default().without_noise();
            let monitor = monitor_with_queries(config.clone(), &[QueryKind::Counter]);
            let mut writer = StateWriter::new();
            monitor.save_state(&mut writer).expect("save");
            let bytes = writer.into_bytes();
            let mut other = Monitor::new(config.with_strategy(Strategy::NoShedding));
            match other.load_state(&mut StateReader::new(&bytes)).unwrap_err() {
                StateError::Mismatch { what, found, expected } => {
                    assert_eq!(what, "policy name");
                    assert_eq!(found, "eq_srates");
                    assert_eq!(expected, "no_lshed");
                }
                other => panic!("expected a Mismatch naming both policies, got {other:?}"),
            }
        }

        #[test]
        fn bare_instances_cannot_be_checkpointed() {
            let mut monitor = Monitor::new(MonitorConfig::default().without_noise());
            monitor
                .register_instance(netshed_queries::build_query(QueryKind::Counter), None, None)
                .expect("register");
            let mut writer = StateWriter::new();
            match monitor.save_state(&mut writer).unwrap_err() {
                StateError::Unsupported(component) => {
                    assert!(component.contains("counter"), "{component}");
                }
                other => panic!("expected Unsupported, got {other:?}"),
            }
        }

        #[test]
        fn deregistered_ids_restore_without_renumbering() {
            let config = MonitorConfig::default().with_capacity(1e12).without_noise();
            let mut monitor = Monitor::new(config.clone());
            let first = monitor.register(&QuerySpec::new(QueryKind::Counter)).expect("register");
            let _second = monitor.register(&QuerySpec::new(QueryKind::Flows)).expect("register");
            monitor.deregister(first).expect("deregister");
            let batches = small_trace(5, 100.0);
            for batch in &batches {
                monitor.process_batch(batch).expect("batch");
            }
            let mut writer = StateWriter::new();
            monitor.save_state(&mut writer).expect("save");
            let bytes = writer.into_bytes();

            let mut restored = Monitor::new(config);
            restored.load_state(&mut StateReader::new(&bytes)).expect("load");
            assert_eq!(restored.query_handles(), monitor.query_handles());
            // A post-restore registration must not reuse the retired id 0.
            let third = restored.register(&QuerySpec::new(QueryKind::Counter)).expect("register");
            assert_eq!(third.index(), 2);
        }
    }

    /// Properties of the slow-start-like buffer discovery (Section 4.1),
    /// exercised directly against `update_buffer_discovery`.
    mod buffer_discovery {
        use super::*;
        use proptest::prelude::*;

        fn quiet_monitor(capacity: f64) -> Monitor {
            Monitor::new(MonitorConfig::default().with_capacity(capacity).without_noise())
        }

        proptest! {
            /// `rtthresh` never exceeds `capacity × RTTHRESH_MAX_FRACTION`,
            /// whatever load sequence drives it.
            #[test]
            fn rtthresh_never_exceeds_the_capacity_fraction(
                capacity in 1e6f64..1e10,
                loads in proptest::collection::vec(0.0f64..2.0, 1..300),
            ) {
                let mut monitor = quiet_monitor(capacity);
                for load_factor in loads {
                    monitor.buffer.account_bin(capacity * load_factor);
                    monitor.update_buffer_discovery(capacity * load_factor);
                    prop_assert!(monitor.rtthresh <= capacity * RTTHRESH_MAX_FRACTION + 1e-9);
                    prop_assert!(monitor.rtthresh >= 0.0);
                }
            }

            /// When the buffer occupation crosses the instability threshold,
            /// `rtthresh` resets to zero and the slow-start threshold halves.
            #[test]
            fn instability_resets_rtthresh_and_halves_ssthresh(
                capacity in 1e6f64..1e10,
                underloaded_bins in 1usize..200,
            ) {
                let mut monitor = quiet_monitor(capacity);
                for _ in 0..underloaded_bins {
                    monitor.update_buffer_discovery(capacity * 0.5);
                }
                let grown = monitor.rtthresh;
                prop_assert!(grown > 0.0);

                // Push the buffer past the instability occupation.
                let bins = monitor.config.buffer_capacity_bins;
                monitor.buffer.account_bin(capacity * (1.0 + bins * (BUFFER_UNSTABLE_OCCUPATION + 0.1)));
                monitor.update_buffer_discovery(capacity * 2.0);
                prop_assert_eq!(monitor.rtthresh, 0.0);
                prop_assert!(monitor.rtthresh_ssthresh >= capacity * 0.01 - 1e-9);
                prop_assert!(monitor.rtthresh_ssthresh <= (grown / 2.0).max(capacity * 0.01) + 1e-9);
            }

            /// Below the slow-start threshold growth is exponential
            /// (doubling per underloaded bin); above it, linear.
            #[test]
            fn growth_doubles_below_ssthresh_and_is_linear_above(
                capacity in 1e6f64..1e10,
            ) {
                let mut monitor = quiet_monitor(capacity);
                let increment = capacity * 0.01;

                // Slow-start phase: ssthresh is infinite, growth must double.
                monitor.update_buffer_discovery(capacity * 0.5);
                prop_assert!((monitor.rtthresh - increment).abs() < 1e-9);
                let mut previous = monitor.rtthresh;
                for _ in 0..3 {
                    monitor.update_buffer_discovery(capacity * 0.5);
                    prop_assert!((monitor.rtthresh - 2.0 * previous).abs() < 1e-6 * capacity);
                    previous = monitor.rtthresh;
                }

                // Force congestion avoidance: drop ssthresh below rtthresh.
                monitor.rtthresh_ssthresh = monitor.rtthresh / 2.0;
                let before = monitor.rtthresh;
                monitor.update_buffer_discovery(capacity * 0.5);
                let expected = (before + increment).min(capacity * RTTHRESH_MAX_FRACTION);
                prop_assert!((monitor.rtthresh - expected).abs() < 1e-9 * capacity.max(1.0));

                // Overloaded bins leave the threshold untouched (no growth).
                let held = monitor.rtthresh;
                monitor.update_buffer_discovery(capacity * 1.5);
                prop_assert_eq!(monitor.rtthresh, held);
            }
        }
    }
}
