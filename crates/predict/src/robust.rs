//! A hardened MLR variant for adversarial traffic.
//!
//! The plain [`MlrPredictor`] trusts its feedback: whatever cycles the
//! monitor observed go straight into the regression history. That trust is
//! the attack surface the adversarial corpus games — crafted payloads make
//! cost per byte explode while every feature stays calm, flow churn makes
//! the cost oscillate against a flat feature vector, and sampling skew makes
//! the rate-extrapolated observations themselves swing wildly. The
//! [`RobustMlrPredictor`] wraps the plain predictor with three defenses:
//!
//! 1. **Non-finite guards** — probe features and observed responses pass
//!    through [`crate::guard`] before touching any model state.
//! 2. **Outlier-clamped residuals** — an observation that exceeds the last
//!    prediction by more than [`RobustMlrConfig::trip_ratio`] is stored
//!    clamped to [`RobustMlrConfig::clamp_ratio`] times the prediction, so a
//!    single poisoned measurement (an all-or-nothing sampling extrapolation,
//!    say) cannot yank the regression; under a *sustained* shift the clamp
//!    ratchets geometrically, reaching the true level within a few bins.
//! 3. **Forgetting-factor history** — [`RobustMlrConfig::forget_trips`]
//!    *consecutive* trips mark a regime shift (an isolated trip is merely
//!    clamped — dropping a good history over one poisoned measurement would
//!    be self-harm) and shrink the history to its newest
//!    [`RobustMlrConfig::forget_keep`] observations: the pre-shift window is
//!    exactly what keeps the model wrong, so it is dropped and the model
//!    relearns the new regime in a handful of bins instead of averaging
//!    over the full 60-bin window.
//!
//! The trip is deliberately conservative (warm history, positive prediction,
//! a multi-x ratio): on benign traffic it never fires, and an untripped
//! `RobustMlrPredictor` performs *bit-for-bit* the same arithmetic as
//! [`MlrPredictor`] — the property the `robustness` integration tests and
//! the golden-scenario equivalence proptest pin down. The hardened variant
//! is therefore a strict opt-in: zero behavioral drift unattacked.

use crate::guard::{clamp_features, clamp_sample};
use crate::history::History;
use crate::predictor::{MlrConfig, MlrPredictor, Predictor};
use netshed_features::FeatureVector;
use netshed_sketch::{StateError, StateReader, StateWriter};

/// Configuration of the [`RobustMlrPredictor`].
#[derive(Debug, Clone, Copy)]
pub struct RobustMlrConfig {
    /// Configuration of the wrapped MLR predictor.
    pub mlr: MlrConfig,
    /// An observation more than `trip_ratio` times the last prediction trips
    /// the outlier defense. Must be comfortably above any benign
    /// misprediction: the default 4.0 is roughly twice the worst ratio the
    /// benign golden scenarios produce.
    pub trip_ratio: f64,
    /// A tripped observation is stored clamped to `clamp_ratio` times the
    /// prediction (≥ `trip_ratio`, so observations between the two pass
    /// through unclamped and only the history is forgotten).
    pub clamp_ratio: f64,
    /// The trip is armed only once the history holds at least this many
    /// observations — a cold model mispredicts for honest reasons.
    pub min_history: usize,
    /// Consecutive trips required before the history is forgotten. An
    /// isolated trip (an all-or-nothing sampling extrapolation under skewed
    /// traffic) is merely clamped — throwing away a good history for one
    /// poisoned measurement is self-harm — while a run of trips marks a
    /// genuine regime shift worth relearning from scratch.
    pub forget_trips: usize,
    /// How many of the newest observations survive the forgetting step.
    pub forget_keep: usize,
    /// After a trip the predictor stays alert for this many further
    /// observations: each of them keeps trimming the history to
    /// `forget_keep` even without tripping, so the stale pre-shift window is
    /// fully flushed while the model relearns the new regime.
    pub alert_bins: usize,
}

impl Default for RobustMlrConfig {
    fn default() -> Self {
        Self {
            mlr: MlrConfig::default(),
            trip_ratio: 4.0,
            clamp_ratio: 12.0,
            min_history: 8,
            forget_trips: 2,
            // Keep enough post-shift observations for the regression to
            // refit meaningfully: trimming much below the selected-feature
            // count leaves the OLS rank-starved and the "defense" becomes
            // self-harm under repeated trips.
            forget_keep: 6,
            alert_bins: 2,
        }
    }
}

/// [`MlrPredictor`] hardened against predictor-gaming workloads.
///
/// See the [module docs](self) for the defense model. Constructed like any
/// other predictor (one per query, via a `PredictorFactory`); the
/// `robust_mlr_fcbf` [`PredictorKind`](../../netshed_monitor) exposes it to
/// the monitor configuration.
#[derive(Debug)]
pub struct RobustMlrPredictor {
    inner: MlrPredictor,
    config: RobustMlrConfig,
    /// The prediction issued for the bin whose observation comes next.
    last_prediction: Option<f64>,
    /// How many observations tripped the outlier defense so far.
    tripped: u64,
    /// Current run of consecutive tripped observations.
    streak: usize,
    /// Remaining post-trip observations that keep trimming the history.
    alert: usize,
}

impl RobustMlrPredictor {
    /// Creates a hardened predictor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the ratios are not finite and greater than 1, if
    /// `clamp_ratio < trip_ratio`, or if `forget_keep` is zero — each of
    /// those would turn the defense into self-harm.
    pub fn new(config: RobustMlrConfig) -> Self {
        assert!(
            config.trip_ratio.is_finite() && config.trip_ratio > 1.0,
            "trip ratio must be finite and above 1"
        );
        assert!(
            config.clamp_ratio.is_finite() && config.clamp_ratio >= config.trip_ratio,
            "clamp ratio must be finite and at least the trip ratio"
        );
        assert!(config.forget_keep > 0, "forgetting must keep at least one observation");
        Self {
            inner: MlrPredictor::new(config.mlr),
            config,
            last_prediction: None,
            tripped: 0,
            streak: 0,
            alert: 0,
        }
    }

    /// Creates a hardened predictor with the default parameters.
    pub fn with_defaults() -> Self {
        Self::new(RobustMlrConfig::default())
    }

    /// Returns the regression history of the wrapped predictor.
    pub fn history(&self) -> &History {
        self.inner.history()
    }

    /// Number of observations that tripped the outlier defense so far.
    /// Stays zero for the whole run on benign traffic.
    pub fn tripped_observations(&self) -> u64 {
        self.tripped
    }
}

impl Predictor for RobustMlrPredictor {
    fn predict(&mut self, features: &FeatureVector) -> f64 {
        let features = clamp_features(features);
        let predicted = self.inner.predict(&features);
        self.last_prediction = Some(predicted);
        predicted
    }

    fn observe(&mut self, features: &FeatureVector, actual_cycles: f64) {
        let features = clamp_features(features);
        let actual = clamp_sample(actual_cycles);
        let mut stored = actual;
        let mut trip = false;
        if let Some(predicted) = self.last_prediction.take() {
            let warm = self.inner.history().len() >= self.config.min_history;
            if warm && predicted > 0.0 && actual > predicted * self.config.trip_ratio {
                stored = actual.min(predicted * self.config.clamp_ratio);
                trip = true;
            }
        }
        if trip {
            self.tripped += 1;
            self.streak += 1;
            // An isolated trip is only clamped; a *run* of trips marks a
            // regime shift, and the pre-shift window is what keeps the
            // model wrong, so it is dropped.
            if self.streak >= self.config.forget_trips {
                self.inner.history_mut().forget_oldest(self.config.forget_keep);
                self.alert = self.config.alert_bins;
            }
        } else {
            self.streak = 0;
            if self.alert > 0 {
                // Still relearning after a shift: keep flushing the
                // pre-shift window so only post-shift observations shape
                // the model.
                self.alert -= 1;
                self.inner.history_mut().forget_oldest(self.config.forget_keep);
            }
        }
        self.inner.observe(&features, stored);
    }

    fn observe_corrupted(&mut self, features: &FeatureVector, predicted_cycles: f64) {
        // A corrupted measurement already substitutes the prediction, which
        // cannot trip its own outlier test; it also interrupts any run of
        // trips. Just keep the pairing straight.
        self.last_prediction = None;
        self.streak = 0;
        self.inner.observe_corrupted(&clamp_features(features), clamp_sample(predicted_cycles));
    }

    fn name(&self) -> &'static str {
        "robust_mlr"
    }

    fn selected_features(&self) -> Vec<usize> {
        self.inner.selected_features()
    }

    fn last_cost_operations(&self) -> u64 {
        self.inner.last_cost_operations()
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        self.inner.save_state(writer)?;
        writer.opt_f64(self.last_prediction);
        writer.u64(self.tripped);
        writer.usize(self.streak);
        writer.usize(self.alert);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.inner.load_state(reader)?;
        self.last_prediction = reader.opt_f64()?;
        self.tripped = reader.u64()?;
        self.streak = reader.usize()?;
        self.alert = reader.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_features::FeatureId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn benign_features(rng: &mut StdRng) -> FeatureVector {
        let mut f = FeatureVector::zeros();
        f.set(FeatureId::Packets, rng.gen_range(500.0..1500.0));
        f.set(FeatureId::Bytes, rng.gen_range(100_000.0..800_000.0));
        f
    }

    #[test]
    fn untripped_robust_predictor_is_bit_identical_to_plain_mlr() {
        let mut plain = MlrPredictor::with_defaults();
        let mut robust = RobustMlrPredictor::with_defaults();
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..120 {
            let f = benign_features(&mut rng);
            let actual = 2_000.0 * f.packets() + 0.5 * f.get(FeatureId::Bytes);
            let a = plain.predict(&f);
            let b = robust.predict(&f);
            assert_eq!(a.to_bits(), b.to_bits(), "predictions must match bit for bit");
            assert_eq!(plain.last_cost_operations(), robust.last_cost_operations());
            plain.observe(&f, actual);
            robust.observe(&f, actual);
        }
        assert_eq!(robust.tripped_observations(), 0);
    }

    #[test]
    fn sustained_shift_trips_forgets_and_relearns_quickly() {
        let mut plain = MlrPredictor::with_defaults();
        let mut robust = RobustMlrPredictor::with_defaults();
        let mut rng = StdRng::seed_from_u64(32);
        // Benign warm-up: the model learns cost = 1000 * packets.
        for _ in 0..30 {
            let f = benign_features(&mut rng);
            let actual = 1_000.0 * f.packets();
            plain.predict(&f);
            robust.predict(&f);
            plain.observe(&f, actual);
            robust.observe(&f, actual);
        }
        // Attack: same features, 40x the cost (the bm-mimicry shape).
        let (mut plain_err, mut robust_err) = (0.0f64, 0.0f64);
        let (mut plain_tail, mut robust_tail) = (0.0f64, 0.0f64);
        for bin in 0..12 {
            let f = benign_features(&mut rng);
            let actual = 40_000.0 * f.packets();
            let plain_bin = (actual - plain.predict(&f)).abs() / actual;
            let robust_bin = (actual - robust.predict(&f)).abs() / actual;
            plain_err += plain_bin;
            robust_err += robust_bin;
            if bin >= 6 {
                plain_tail += plain_bin;
                robust_tail += robust_bin;
            }
            plain.observe(&f, actual);
            robust.observe(&f, actual);
        }
        assert!(robust.tripped_observations() > 0, "the attack must trip the defense");
        assert!(
            robust_err < plain_err * 0.75,
            "forgetting must relearn faster: robust {robust_err:.3} vs plain {plain_err:.3}"
        );
        // Once the pre-shift window is flushed the hardened model tracks the
        // attack regime; the plain model is still averaging it away.
        assert!(
            robust_tail < plain_tail * 0.6,
            "post-flush error must stay well below plain MLR: robust {robust_tail:.3} vs \
             plain {plain_tail:.3}"
        );
    }

    #[test]
    fn single_outlier_is_clamped_and_does_not_move_the_model() {
        let mut robust = RobustMlrPredictor::with_defaults();
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..30 {
            let f = benign_features(&mut rng);
            robust.predict(&f);
            robust.observe(&f, 1_000.0 * f.packets());
        }
        let f = benign_features(&mut rng);
        let before = robust.predict(&f);
        // One wild sampling extrapolation, 1000x the truth.
        robust.observe(&f, 1_000_000.0 * f.packets());
        assert_eq!(robust.tripped_observations(), 1);
        let after = robust.predict(&f);
        assert!(
            after < before * robust.config.clamp_ratio,
            "a single outlier moved the prediction from {before} to {after}"
        );
        let worst = robust.history().responses().into_iter().fold(0.0f64, f64::max);
        assert!(
            worst <= before * robust.config.clamp_ratio * 1.01,
            "the stored outlier must be clamped (stored {worst}, predicted {before})"
        );
    }

    #[test]
    fn poisoned_inputs_never_reach_the_model() {
        let mut robust = RobustMlrPredictor::with_defaults();
        let mut rng = StdRng::seed_from_u64(34);
        for _ in 0..10 {
            let f = benign_features(&mut rng);
            robust.predict(&f);
            robust.observe(&f, 1_000.0 * f.packets());
        }
        let mut poisoned = FeatureVector::zeros();
        poisoned.set(FeatureId::Packets, f64::NAN);
        poisoned.set(FeatureId::Bytes, f64::INFINITY);
        let prediction = robust.predict(&poisoned);
        assert!(prediction.is_finite() && prediction >= 0.0);
        robust.observe(&poisoned, f64::INFINITY);
        robust.observe_corrupted(&poisoned, f64::NAN);
        for (features, cycles) in robust.history().iter() {
            assert!(cycles.is_finite());
            assert!((0..netshed_features::FEATURE_COUNT).all(|i| features.get_index(i).is_finite()));
        }
        let recovered = robust.predict(&benign_features(&mut rng));
        assert!(recovered.is_finite() && recovered >= 0.0);
    }

    #[test]
    fn checkpoint_roundtrip_restores_the_defense_state() {
        let mut robust = RobustMlrPredictor::with_defaults();
        let mut rng = StdRng::seed_from_u64(35);
        for _ in 0..20 {
            let f = benign_features(&mut rng);
            robust.predict(&f);
            robust.observe(&f, 1_000.0 * f.packets());
        }
        let f = benign_features(&mut rng);
        robust.predict(&f);
        robust.observe(&f, 1e9);
        let probe = benign_features(&mut rng);
        let issued = robust.predict(&probe);
        let mut writer = StateWriter::new();
        robust.save_state(&mut writer).expect("saves");
        let bytes = writer.into_bytes();
        let mut restored = RobustMlrPredictor::with_defaults();
        restored.load_state(&mut StateReader::new(&bytes)).expect("loads");
        assert_eq!(restored.tripped_observations(), robust.tripped_observations());
        assert_eq!(restored.predict(&probe).to_bits(), issued.to_bits());
    }

    #[test]
    #[should_panic(expected = "clamp ratio must be finite and at least the trip ratio")]
    fn inverted_ratios_are_rejected() {
        let _ = RobustMlrPredictor::new(RobustMlrConfig {
            trip_ratio: 8.0,
            clamp_ratio: 4.0,
            ..RobustMlrConfig::default()
        });
    }
}
