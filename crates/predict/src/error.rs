//! Prediction error bookkeeping.

use netshed_linalg::stats::{max, mean, percentile, stdev};

/// Accumulates relative prediction errors and reports the summary statistics
/// used throughout the paper's evaluation (mean, standard deviation, maximum
/// and 95th percentile — e.g. Figures 3.7, 3.12 and Tables 3.2, 3.3).
#[derive(Debug, Clone, Default)]
pub struct ErrorStats {
    errors: Vec<f64>,
}

impl ErrorStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction/actual pair.
    ///
    /// The relative error is `|1 - predicted / actual|`; when the actual
    /// value is zero the pair is skipped, mirroring the paper's treatment of
    /// empty batches.
    pub fn record(&mut self, predicted: f64, actual: f64) {
        if actual.abs() < f64::EPSILON {
            return;
        }
        self.errors.push((1.0 - predicted / actual).abs());
    }

    /// Records a pre-computed relative error.
    pub fn record_error(&mut self, relative_error: f64) {
        self.errors.push(relative_error.abs());
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Mean relative error.
    pub fn mean(&self) -> f64 {
        mean(&self.errors)
    }

    /// Standard deviation of the relative error.
    pub fn stdev(&self) -> f64 {
        stdev(&self.errors)
    }

    /// Maximum relative error.
    pub fn max(&self) -> f64 {
        max(&self.errors)
    }

    /// Percentile of the relative error (e.g. 95.0 for the 95th percentile).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile(&self.errors, p)
    }

    /// All recorded errors, in insertion order (one per batch).
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ErrorStats) {
        self.errors.extend_from_slice(&other.errors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_computes_relative_error() {
        let mut stats = ErrorStats::new();
        stats.record(90.0, 100.0);
        stats.record(110.0, 100.0);
        assert_eq!(stats.len(), 2);
        assert!((stats.mean() - 0.1).abs() < 1e-12);
        assert!((stats.max() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_actual_is_skipped() {
        let mut stats = ErrorStats::new();
        stats.record(5.0, 0.0);
        assert!(stats.is_empty());
    }

    #[test]
    fn percentile_and_merge() {
        let mut a = ErrorStats::new();
        let mut b = ErrorStats::new();
        for i in 1..=50 {
            a.record_error(i as f64 / 100.0);
            b.record_error(0.5 + i as f64 / 100.0);
        }
        a.merge(&b);
        assert_eq!(a.len(), 100);
        assert!(a.percentile(95.0) > 0.9);
        assert!(a.percentile(5.0) < 0.1);
    }
}
