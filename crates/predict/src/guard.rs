//! Numeric guards on the prediction inputs.
//!
//! The predictors regress over values that ultimately come from untrusted
//! traffic, and the feedback path multiplies measurements by reciprocal
//! sampling rates. A NaN or infinity that slips into the regression history
//! poisons every later OLS solve (NaN propagates through the whole pseudo-
//! inverse), so the rule enforced here is simple: **no non-finite value ever
//! reaches the design matrix**. Every guarded site clamps through
//! [`clamp_sample`], which is the identity for every value benign traffic
//! can produce — finite, non-negative, far below [`MAX_SAMPLE`] — so the
//! guards cannot move a single golden digest.

use netshed_features::{FeatureVector, FEATURE_COUNT};

/// Upper bound on any feature or response sample. Benign values are counts
/// or cycle totals around 1e9 at the very most; 1e18 leaves six orders of
/// magnitude of headroom while keeping products like `value * history_len`
/// comfortably inside `f64` range.
pub const MAX_SAMPLE: f64 = 1e18;

/// Clamps one sample (a feature value or a response) into the finite,
/// non-negative range the regression is defined on.
///
/// Identity for all benign inputs; NaN and `-inf` become 0, `+inf` and
/// overflow-prone magnitudes saturate at [`MAX_SAMPLE`].
pub fn clamp_sample(value: f64) -> f64 {
    if value.is_nan() {
        return 0.0;
    }
    value.clamp(0.0, MAX_SAMPLE)
}

/// Clamps every feature of a vector through [`clamp_sample`].
///
/// Returns the input unchanged (bit-for-bit) when all features are already
/// in range, which is the case for every vector the feature extractor
/// produces from real packets.
pub fn clamp_features(features: &FeatureVector) -> FeatureVector {
    let mut values = [0.0; FEATURE_COUNT];
    for (index, value) in values.iter_mut().enumerate() {
        *value = clamp_sample(features.get_index(index));
    }
    FeatureVector::from_values(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_features::FeatureId;

    #[test]
    fn clamp_sample_is_identity_on_benign_values() {
        for value in [0.0, 1.0, 1e-12, 42.5, 1e9, MAX_SAMPLE] {
            assert_eq!(clamp_sample(value).to_bits(), value.to_bits());
        }
    }

    #[test]
    fn clamp_sample_removes_every_non_finite_value() {
        assert_eq!(clamp_sample(f64::NAN), 0.0);
        assert_eq!(clamp_sample(f64::NEG_INFINITY), 0.0);
        assert_eq!(clamp_sample(f64::INFINITY), MAX_SAMPLE);
        assert_eq!(clamp_sample(-3.0), 0.0);
        assert_eq!(clamp_sample(1e300), MAX_SAMPLE);
    }

    #[test]
    fn clamp_features_sanitizes_only_the_poisoned_slots() {
        let mut features = FeatureVector::zeros();
        features.set(FeatureId::Packets, 120.0);
        features.set(FeatureId::from_index(3), f64::NAN);
        features.set(FeatureId::from_index(7), f64::INFINITY);
        let clamped = clamp_features(&features);
        assert_eq!(clamped.get(FeatureId::Packets), 120.0);
        assert_eq!(clamped.get_index(3), 0.0);
        assert_eq!(clamped.get_index(7), MAX_SAMPLE);
        assert!((0..FEATURE_COUNT).all(|i| clamped.get_index(i).is_finite()));
    }
}
