//! Fast Correlation-Based Filter feature selection.
//!
//! Section 3.2.3: the predictor must pick, out of the 42 extracted features,
//! the small subset that is (i) relevant to the query's CPU usage and (ii)
//! not redundant with an already selected feature. The paper adapts the FCBF
//! algorithm of Yu and Liu, replacing symmetrical uncertainty with the linear
//! (Pearson) correlation coefficient as the goodness measure:
//!
//! 1. **Relevance**: features whose |correlation| with the response is below
//!    the FCBF threshold are dropped.
//! 2. **Redundancy**: the surviving features are ranked by |correlation|;
//!    walking the list from the strongest predictor, any later feature that
//!    is more correlated with the current predictor than with the response is
//!    removed.

use crate::history::History;
use netshed_linalg::stats::pearson;

/// Configuration of the FCBF feature selection.
#[derive(Debug, Clone, Copy)]
pub struct FcbfConfig {
    /// Minimum |correlation| with the response for a feature to be relevant.
    /// The paper settles on 0.6 as a good cost/accuracy trade-off.
    pub threshold: f64,
    /// Hard cap on the number of selected features (guards the MLR cost).
    pub max_features: usize,
}

impl Default for FcbfConfig {
    fn default() -> Self {
        Self { threshold: 0.6, max_features: 8 }
    }
}

/// Reusable working memory for [`fcbf_select_with`]: the response column and
/// the probe buffer each relevance test streams a feature into. One scratch
/// lives per predictor, so the 42-feature relevance pass performs no
/// allocation at all except for the (few) candidates that clear the
/// threshold.
#[derive(Debug, Default)]
pub struct FcbfScratch {
    responses: Vec<f64>,
    column: Vec<f64>,
}

/// Selects predictor feature indices from the history using FCBF.
///
/// Returns the indices (into the feature vector) of the selected features,
/// ordered from most to least correlated with the response. The result may
/// be empty if no feature clears the threshold; callers are expected to fall
/// back to a sensible default (the `packets` feature) in that case.
pub fn fcbf_select(history: &History, config: &FcbfConfig, feature_count: usize) -> Vec<usize> {
    fcbf_select_with(history, config, feature_count, &mut FcbfScratch::default())
}

/// [`fcbf_select`] with caller-owned scratch buffers — the allocation-free
/// variant the per-bin prediction hot path uses. Bit-identical to
/// [`fcbf_select`]: the correlation tests see exactly the same values.
pub fn fcbf_select_with(
    history: &History,
    config: &FcbfConfig,
    feature_count: usize,
    scratch: &mut FcbfScratch,
) -> Vec<usize> {
    if history.len() < 2 {
        return Vec::new();
    }
    history.fill_responses(&mut scratch.responses);
    let responses = &scratch.responses;

    // Phase 1: relevance.
    let mut candidates: Vec<(usize, f64, Vec<f64>)> = Vec::new();
    scratch.column.clear();
    scratch.column.resize(history.len(), 0.0);
    for index in 0..feature_count {
        history.fill_feature_column(index, &mut scratch.column);
        let correlation = pearson(&scratch.column, responses).abs();
        // A zero-variance column (or one that overflowed the correlation
        // arithmetic) yields a NaN correlation. `NaN >= threshold` is false,
        // but the guard is explicit: a non-finite goodness score means "not
        // a predictor", never a NaN row in the design matrix.
        if correlation.is_finite() && correlation >= config.threshold {
            candidates.push((index, correlation, scratch.column.clone()));
        }
    }
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1));

    // Phase 2: redundancy removal.
    let mut selected: Vec<(usize, f64, Vec<f64>)> = Vec::new();
    'outer: for candidate in candidates {
        for kept in &selected {
            let mutual = pearson(&candidate.2, &kept.2).abs();
            // If the candidate is at least as correlated with an already
            // selected predictor as with the response, it is redundant. The
            // small tolerance keeps the comparison robust when both
            // correlations are numerically ~1.0 (exactly collinear features).
            if mutual + 1e-9 >= candidate.1 {
                continue 'outer;
            }
        }
        selected.push(candidate);
        if selected.len() >= config.max_features {
            break;
        }
    }

    selected.into_iter().map(|(index, _, _)| index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netshed_features::{FeatureId, FeatureVector};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a history where the response depends on the given features.
    fn synthetic_history<F: Fn(&FeatureVector) -> f64>(
        n: usize,
        seed: u64,
        response: F,
    ) -> History {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut history = History::new(n);
        for _ in 0..n {
            let mut f = FeatureVector::zeros();
            // Populate a handful of features with independent noise.
            f.set(FeatureId::Packets, rng.gen_range(100.0..2000.0));
            f.set(FeatureId::Bytes, rng.gen_range(10_000.0..1_000_000.0));
            f.set(FeatureId::from_index(2), rng.gen_range(0.0..500.0));
            f.set(FeatureId::from_index(6), rng.gen_range(0.0..300.0));
            let y = response(&f);
            history.push(f, y);
        }
        history
    }

    #[test]
    fn selects_the_driving_feature() {
        let history = synthetic_history(60, 1, |f| 10.0 * f.packets() + 50.0);
        let selected = fcbf_select(&history, &FcbfConfig::default(), 42);
        assert_eq!(selected.first(), Some(&FeatureId::Packets.index()));
    }

    #[test]
    fn removes_redundant_copies_of_the_same_signal() {
        // Response driven by packets; bytes made perfectly redundant with packets.
        let mut history = History::new(60);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..60 {
            let packets = rng.gen_range(100.0..2000.0);
            let mut f = FeatureVector::zeros();
            f.set(FeatureId::Packets, packets);
            f.set(FeatureId::Bytes, packets * 500.0);
            history.push(f, 3.0 * packets);
        }
        let selected = fcbf_select(&history, &FcbfConfig::default(), 42);
        assert_eq!(selected.len(), 1, "redundant feature should be removed: {selected:?}");
    }

    #[test]
    fn high_threshold_selects_nothing_for_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut history = History::new(60);
        for _ in 0..60 {
            let mut f = FeatureVector::zeros();
            f.set(FeatureId::Packets, rng.gen_range(0.0..1000.0));
            // Response completely independent of the features.
            history.push(f, rng.gen_range(0.0..1000.0));
        }
        let selected = fcbf_select(&history, &FcbfConfig { threshold: 0.9, max_features: 8 }, 42);
        assert!(selected.is_empty());
    }

    #[test]
    fn multi_feature_response_selects_both_drivers() {
        // Both terms contribute comparable variance so each feature clears
        // the relevance threshold on its own.
        let history = synthetic_history(80, 4, |f| {
            30.0 * f.packets() + 200.0 * f.get(FeatureId::from_index(6))
        });
        let config = FcbfConfig { threshold: 0.3, max_features: 8 };
        let selected = fcbf_select(&history, &config, 42);
        assert!(selected.contains(&FeatureId::Packets.index()));
        assert!(selected.contains(&6));
    }

    #[test]
    fn tiny_history_selects_nothing() {
        let mut history = History::new(10);
        history.push(FeatureVector::zeros(), 1.0);
        assert!(fcbf_select(&history, &FcbfConfig::default(), 42).is_empty());
    }

    #[test]
    fn zero_variance_and_poisoned_columns_are_never_selected() {
        // A constant column makes the Pearson denominator zero (NaN
        // correlation); it must be silently irrelevant, not selected and not
        // a panic. The response here is driven by packets so something *is*
        // selectable.
        let mut history = History::new(40);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let mut f = FeatureVector::zeros();
            f.set(FeatureId::Packets, rng.gen_range(100.0..2000.0));
            f.set(FeatureId::from_index(4), 7.0); // constant: zero variance
            history.push(f, 5.0 * f.packets());
        }
        let selected = fcbf_select(&history, &FcbfConfig { threshold: 0.0, max_features: 42 }, 42);
        assert!(!selected.contains(&4), "a zero-variance feature must never be selected");
        assert!(selected.contains(&FeatureId::Packets.index()));
    }

    #[test]
    fn max_features_caps_the_selection() {
        let history = synthetic_history(60, 5, |f| f.packets() + f.bytes());
        let config = FcbfConfig { threshold: 0.1, max_features: 1 };
        let selected = fcbf_select(&history, &config, 42);
        assert!(selected.len() <= 1);
    }
}
