//! CPU-usage prediction for black-box monitoring queries.
//!
//! This crate implements Chapter 3 of the paper: given only the per-batch
//! traffic [`FeatureVector`](netshed_features::FeatureVector) and the history
//! of observed per-batch CPU usage of a query, predict the cycles the query
//! will need for the next batch.
//!
//! Three predictors are provided:
//!
//! * [`MlrPredictor`] — the paper's method: Fast Correlation-Based Filter
//!   feature selection followed by multiple linear regression over a sliding
//!   history window (Sections 3.2.2 and 3.2.3).
//! * [`SlrPredictor`] — simple linear regression on a single, fixed feature
//!   (the number of packets by default), the stronger of the two baselines
//!   (Section 3.4.1).
//! * [`EwmaPredictor`] — exponentially weighted moving average of the past
//!   CPU usage, ignoring the traffic entirely (Section 3.4.1).
//!
//! A fourth, [`RobustMlrPredictor`], hardens the MLR method against
//! predictor-gaming traffic (outlier-clamped residuals, forgetting-factor
//! history, non-finite guards) while performing bit-identical arithmetic on
//! benign workloads; see the [`robust`] module docs for the defense model.
//!
//! All predictors implement the [`Predictor`] trait so the load shedding
//! system and the experiment harness can swap them freely. Because the
//! prediction history is per query, the monitoring system instantiates one
//! predictor per registration through a [`PredictorFactory`] (any
//! `Fn() -> Box<dyn Predictor>` closure qualifies), which is also how
//! user-defined predictors plug in.

#![forbid(unsafe_code)]

pub mod error;
pub mod fcbf;
pub mod guard;
pub mod history;
pub mod predictor;
pub mod robust;

pub use error::ErrorStats;
pub use fcbf::{fcbf_select, fcbf_select_with, FcbfConfig, FcbfScratch};
pub use guard::{clamp_features, clamp_sample, MAX_SAMPLE};
pub use history::History;
pub use predictor::{
    EwmaPredictor, MlrConfig, MlrPredictor, Predictor, PredictorFactory, SlrPredictor,
};
pub use robust::{RobustMlrConfig, RobustMlrPredictor};
