//! The three CPU-usage predictors: MLR+FCBF, SLR and EWMA.

use crate::fcbf::{fcbf_select_with, FcbfConfig, FcbfScratch};
use crate::guard::clamp_sample;
use crate::history::History;
use netshed_features::{FeatureId, FeatureVector, FEATURE_COUNT};
use netshed_linalg::stats::Ewma;
use netshed_linalg::{ols_solve, Matrix};
use netshed_sketch::{StateError, StateReader, StateWriter};

/// A per-query CPU-usage predictor.
///
/// The monitoring system calls [`Predictor::predict`] once per batch *before*
/// running the query (to decide whether load must be shed) and
/// [`Predictor::observe`] once per batch *after* running it, feeding back the
/// measured cycles so the model can adapt.
pub trait Predictor: Send {
    /// Predicts the CPU cycles needed to process a batch with the given
    /// feature vector.
    fn predict(&mut self, features: &FeatureVector) -> f64;

    /// Feeds back the observed cycles for a batch with the given features.
    fn observe(&mut self, features: &FeatureVector, actual_cycles: f64);

    /// Records that the observation for the last batch was unusable (e.g. a
    /// context switch corrupted the measurement) and that the given predicted
    /// value should be kept in the history instead. The default implementation
    /// simply observes the prediction.
    fn observe_corrupted(&mut self, features: &FeatureVector, predicted_cycles: f64) {
        self.observe(features, predicted_cycles);
    }

    /// Short name for reports ("mlr", "slr", "ewma").
    fn name(&self) -> &'static str;

    /// Indices of the features most recently used as predictors, if the
    /// method performs feature selection.
    fn selected_features(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Rough number of elementary operations performed by the most recent
    /// prediction (used for the overhead accounting of Table 3.4).
    fn last_cost_operations(&self) -> u64 {
        0
    }

    /// Serializes the predictor's essential state (history, cached feature
    /// selection) for a checkpoint. The default declines so a predictor
    /// without snapshot support fails a checkpoint loudly.
    fn save_state(&self, _writer: &mut StateWriter) -> Result<(), StateError> {
        Err(StateError::unsupported(self.name()))
    }

    /// Restores state captured by [`Predictor::save_state`] into a freshly
    /// built predictor of the same configuration.
    fn load_state(&mut self, _reader: &mut StateReader<'_>) -> Result<(), StateError> {
        Err(StateError::unsupported(self.name()))
    }
}

/// Builds one [`Predictor`] instance per registered query.
///
/// Prediction state is per query (each query has its own cost history), so
/// the monitoring system cannot share a single predictor instance: it asks a
/// factory for a fresh one at every registration. Any
/// `Fn() -> Box<dyn Predictor>` closure is a factory:
///
/// ```
/// use netshed_predict::{EwmaPredictor, Predictor, PredictorFactory};
///
/// let factory = || Box::new(EwmaPredictor::new(0.5)) as Box<dyn Predictor>;
/// assert_eq!(PredictorFactory::name(&factory), "ewma");
/// let mut predictor = factory.make();
/// assert!(predictor.predict(&netshed_features::FeatureVector::zeros()) >= 0.0);
/// ```
pub trait PredictorFactory: Send {
    /// Creates a fresh predictor with empty history.
    fn make(&self) -> Box<dyn Predictor>;

    /// Short name for reports; defaults to the name of a freshly built
    /// instance.
    fn name(&self) -> String {
        self.make().name().to_string()
    }
}

impl<F> PredictorFactory for F
where
    F: Fn() -> Box<dyn Predictor> + Send,
{
    fn make(&self) -> Box<dyn Predictor> {
        self()
    }
}

/// Configuration of the [`MlrPredictor`].
#[derive(Debug, Clone, Copy)]
pub struct MlrConfig {
    /// Number of past observations kept in the regression history
    /// (60 batches = 6 s in the paper).
    pub history: usize,
    /// FCBF feature selection configuration.
    pub fcbf: FcbfConfig,
    /// Relative singular-value cutoff of the OLS solver.
    pub rcond: f64,
    /// How often (in batches) the feature selection is re-run; 1 re-runs it
    /// every batch as in the paper.
    pub reselect_every: usize,
}

impl Default for MlrConfig {
    fn default() -> Self {
        Self { history: 60, fcbf: FcbfConfig::default(), rcond: 1e-9, reselect_every: 1 }
    }
}

/// The paper's predictor: FCBF feature selection + multiple linear regression
/// over a sliding window of observations.
///
/// The per-bin cost is kept down two ways: the FCBF-selected feature set is
/// cached between reselections (`reselect_every`), and the design-matrix,
/// response and probe-row buffers are owned by the predictor and refilled in
/// place every bin instead of being reallocated per `predict` call.
#[derive(Debug)]
pub struct MlrPredictor {
    config: MlrConfig,
    history: History,
    selected: Vec<usize>,
    batches_since_selection: usize,
    last_cost: u64,
    /// Scratch design matrix (intercept + selected features), reused per bin.
    design: Matrix,
    /// Scratch response column, reused per bin.
    responses: Vec<f64>,
    /// Scratch probe row for the prediction, reused per bin.
    row: Vec<f64>,
    /// Scratch buffers for the FCBF relevance pass, reused per reselection.
    fcbf_scratch: FcbfScratch,
}

impl MlrPredictor {
    /// Creates a predictor with the given configuration.
    pub fn new(config: MlrConfig) -> Self {
        Self {
            history: History::new(config.history),
            config,
            selected: Vec::new(),
            batches_since_selection: 0,
            last_cost: 0,
            design: Matrix::zeros(0, 0),
            responses: Vec::new(),
            row: Vec::new(),
            fcbf_scratch: FcbfScratch::default(),
        }
    }

    /// Creates a predictor with the paper's default parameters.
    pub fn with_defaults() -> Self {
        Self::new(MlrConfig::default())
    }

    /// Returns the regression history (mainly for inspection in tests).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Mutable access to the regression history, for the robust wrapper's
    /// forgetting step.
    pub(crate) fn history_mut(&mut self) -> &mut History {
        &mut self.history
    }
}

impl Predictor for MlrPredictor {
    fn predict(&mut self, features: &FeatureVector) -> f64 {
        let n = self.history.len();
        if n < 3 {
            // Not enough history to regress; fall back to the mean of what we
            // have seen (or zero for a cold start).
            self.history.fill_responses(&mut self.responses);
            return netshed_linalg::stats::mean(&self.responses);
        }

        // Re-run feature selection periodically (every batch by default); in
        // between, the cached selection is reused so the 42-column FCBF
        // correlation pass is paid once per `reselect_every` bins.
        let reselected =
            self.selected.is_empty() || self.batches_since_selection >= self.config.reselect_every;
        if reselected {
            self.selected = fcbf_select_with(
                &self.history,
                &self.config.fcbf,
                FEATURE_COUNT,
                &mut self.fcbf_scratch,
            );
            if self.selected.is_empty() {
                // Nothing cleared the threshold: fall back to the packet count,
                // which the paper reports as the most broadly useful feature.
                self.selected = vec![FeatureId::Packets.index()];
            }
            self.batches_since_selection = 0;
        }
        self.batches_since_selection += 1;

        // Refill the scratch design matrix (intercept + selected features)
        // and response column in place.
        self.design.reshape_zeroed(n, self.selected.len() + 1);
        self.design.column_mut(0).fill(1.0);
        for (j, &feature) in self.selected.iter().enumerate() {
            self.history.fill_feature_column(feature, self.design.column_mut(j + 1));
        }
        self.history.fill_responses(&mut self.responses);
        let fit = ols_solve(&self.design, &self.responses, self.config.rcond);

        // Cost accounting: the FCBF correlation pass (n * p) is charged only
        // on bins that actually reselected — cached bins skip it — plus the
        // OLS solve (~ n * k^2) every bin.
        let correlation_cost = if reselected { n as u64 * FEATURE_COUNT as u64 } else { 0 };
        let k = self.selected.len() as u64 + 1;
        self.last_cost = correlation_cost + n as u64 * k * k;

        self.row.clear();
        self.row.push(1.0);
        // The history is sanitized on push; the probe row is the one other
        // path into the fitted model, so it gets the same non-finite guard.
        self.row.extend(self.selected.iter().map(|&i| clamp_sample(features.get_index(i))));
        fit.predict(&self.row).max(0.0)
    }

    fn observe(&mut self, features: &FeatureVector, actual_cycles: f64) {
        self.history.push(*features, actual_cycles);
    }

    fn observe_corrupted(&mut self, features: &FeatureVector, predicted_cycles: f64) {
        self.history.push(*features, predicted_cycles);
    }

    fn name(&self) -> &'static str {
        "mlr"
    }

    fn selected_features(&self) -> Vec<usize> {
        self.selected.clone()
    }

    fn last_cost_operations(&self) -> u64 {
        self.last_cost
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        self.history.save_state(writer);
        writer.usize(self.selected.len());
        for &feature in &self.selected {
            writer.usize(feature);
        }
        writer.usize(self.batches_since_selection);
        writer.u64(self.last_cost);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.history.load_state(reader)?;
        let selected = reader.usize()?;
        self.selected.clear();
        for _ in 0..selected {
            let feature = reader.usize()?;
            if feature >= FEATURE_COUNT {
                return Err(StateError::corrupt(format!(
                    "selected feature index {feature} out of range"
                )));
            }
            self.selected.push(feature);
        }
        self.batches_since_selection = reader.usize()?;
        self.last_cost = reader.u64()?;
        Ok(())
    }
}

/// Simple linear regression on one fixed feature (packets by default).
#[derive(Debug)]
pub struct SlrPredictor {
    feature: usize,
    history: History,
    last_cost: u64,
}

impl SlrPredictor {
    /// Creates an SLR predictor regressing on the given feature index with
    /// the given history length.
    pub fn new(feature: FeatureId, history: usize) -> Self {
        Self { feature: feature.index(), history: History::new(history), last_cost: 0 }
    }

    /// SLR on the number of packets with the paper's 6 s history.
    pub fn on_packets() -> Self {
        Self::new(FeatureId::Packets, 60)
    }
}

impl Predictor for SlrPredictor {
    fn predict(&mut self, features: &FeatureVector) -> f64 {
        let n = self.history.len();
        if n < 3 {
            return netshed_linalg::stats::mean(&self.history.responses());
        }
        let xs = self.history.feature_column(self.feature);
        let ys = self.history.responses();
        let design = Matrix::from_columns(&[vec![1.0; n], xs]);
        let fit = ols_solve(&design, &ys, 1e-9);
        self.last_cost = n as u64 * 4;
        fit.predict(&[1.0, clamp_sample(features.get_index(self.feature))]).max(0.0)
    }

    fn observe(&mut self, features: &FeatureVector, actual_cycles: f64) {
        self.history.push(*features, actual_cycles);
    }

    fn name(&self) -> &'static str {
        "slr"
    }

    fn selected_features(&self) -> Vec<usize> {
        vec![self.feature]
    }

    fn last_cost_operations(&self) -> u64 {
        self.last_cost
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        self.history.save_state(writer);
        writer.u64(self.last_cost);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.history.load_state(reader)?;
        self.last_cost = reader.u64()?;
        Ok(())
    }
}

/// Exponentially weighted moving average of past CPU usage.
///
/// Ignores the traffic features entirely, which is exactly why it lags behind
/// sudden traffic changes (Figure 3.9 / 3.13 of the paper).
#[derive(Debug)]
pub struct EwmaPredictor {
    ewma: Ewma,
}

impl EwmaPredictor {
    /// Creates an EWMA predictor with the given weight for new observations.
    ///
    /// The paper's sweep (Figure 3.10) finds `alpha = 0.3` to be the best
    /// setting for its traces.
    pub fn new(alpha: f64) -> Self {
        Self { ewma: Ewma::new(alpha) }
    }
}

impl Default for EwmaPredictor {
    fn default() -> Self {
        Self::new(0.3)
    }
}

impl Predictor for EwmaPredictor {
    fn predict(&mut self, _features: &FeatureVector) -> f64 {
        self.ewma.value()
    }

    fn observe(&mut self, _features: &FeatureVector, actual_cycles: f64) {
        self.ewma.update(actual_cycles);
    }

    fn name(&self) -> &'static str {
        "ewma"
    }

    fn last_cost_operations(&self) -> u64 {
        1
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), StateError> {
        writer.opt_f64(self.ewma.state());
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.ewma.restore(reader.opt_f64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Drives a predictor over a synthetic workload where the true cost is a
    /// known function of the features and reports the mean relative error
    /// over the second half of the run.
    fn run_predictor<P: Predictor, F: Fn(&FeatureVector) -> f64>(
        predictor: &mut P,
        cost: F,
        batches: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut errors = Vec::new();
        for i in 0..batches {
            let mut f = FeatureVector::zeros();
            f.set(FeatureId::Packets, rng.gen_range(500.0..1500.0));
            f.set(FeatureId::Bytes, rng.gen_range(100_000.0..800_000.0));
            f.set(FeatureId::from_index(5), rng.gen_range(50.0..400.0));
            let actual = cost(&f);
            let predicted = predictor.predict(&f);
            if i > batches / 2 && actual > 0.0 {
                errors.push((predicted - actual).abs() / actual);
            }
            predictor.observe(&f, actual);
        }
        netshed_linalg::stats::mean(&errors)
    }

    #[test]
    fn mlr_learns_a_linear_cost_model() {
        let mut p = MlrPredictor::with_defaults();
        let err = run_predictor(&mut p, |f| 2000.0 * f.packets() + 1e6, 200, 1);
        assert!(err < 0.02, "MLR error {err} too high for an exactly linear cost");
        assert_eq!(p.selected_features(), vec![FeatureId::Packets.index()]);
    }

    #[test]
    fn mlr_handles_multi_feature_costs_better_than_slr() {
        let cost = |f: &FeatureVector| 1500.0 * f.packets() + 30_000.0 * f.get_index(5) + 5e5;
        let mut mlr = MlrPredictor::new(MlrConfig {
            fcbf: FcbfConfig { threshold: 0.2, max_features: 8 },
            ..MlrConfig::default()
        });
        let mut slr = SlrPredictor::on_packets();
        let mlr_err = run_predictor(&mut mlr, cost, 300, 2);
        let slr_err = run_predictor(&mut slr, cost, 300, 2);
        assert!(
            mlr_err < slr_err * 0.5,
            "MLR ({mlr_err}) should clearly beat SLR ({slr_err}) on a two-feature cost"
        );
    }

    #[test]
    fn slr_tracks_packet_linear_costs() {
        let mut p = SlrPredictor::on_packets();
        let err = run_predictor(&mut p, |f| 900.0 * f.packets(), 150, 3);
        assert!(err < 0.02, "SLR error {err}");
    }

    #[test]
    fn ewma_lags_behind_feature_driven_changes() {
        let cost = |f: &FeatureVector| 1000.0 * f.packets();
        let mut ewma = EwmaPredictor::default();
        let mut mlr = MlrPredictor::with_defaults();
        let ewma_err = run_predictor(&mut ewma, cost, 200, 4);
        let mlr_err = run_predictor(&mut mlr, cost, 200, 4);
        assert!(
            ewma_err > mlr_err * 3.0,
            "EWMA ({ewma_err}) should be clearly worse than MLR ({mlr_err})"
        );
    }

    #[test]
    fn cold_start_returns_finite_prediction() {
        let mut p = MlrPredictor::with_defaults();
        let f = FeatureVector::zeros();
        let prediction = p.predict(&f);
        assert!(prediction.is_finite());
        assert!(prediction >= 0.0);
    }

    /// Pins the observe path after the per-bin `features.clone()` was
    /// replaced by a `Copy` dereference: the history must store exactly the
    /// vectors that were observed, value for value, in observation order.
    #[test]
    fn observe_stores_the_exact_feature_vectors() {
        let mut mlr = MlrPredictor::with_defaults();
        let mut slr = SlrPredictor::on_packets();
        let mut expected = Vec::new();
        for i in 0..5 {
            let mut f = FeatureVector::zeros();
            f.set(FeatureId::Packets, 100.0 + f64::from(i));
            f.set(FeatureId::Bytes, 1e4 * f64::from(i + 1));
            f.set(FeatureId::from_index(9), 3.5 * f64::from(i));
            let y = 7.0 * f64::from(i);
            mlr.observe(&f, y);
            slr.observe(&f, y);
            expected.push((f, y));
        }
        for history in [mlr.history(), &slr.history] {
            let stored: Vec<(FeatureVector, f64)> = history.iter().copied().collect();
            assert_eq!(stored, expected, "history must hold the observed vectors unchanged");
        }
    }

    #[test]
    fn observe_corrupted_keeps_history_usable() {
        let mut p = MlrPredictor::with_defaults();
        let mut f = FeatureVector::zeros();
        f.set(FeatureId::Packets, 100.0);
        for _ in 0..10 {
            p.observe(&f, 1000.0);
        }
        p.observe_corrupted(&f, 1000.0);
        assert_eq!(p.history().len(), 11);
        let prediction = p.predict(&f);
        assert!((prediction - 1000.0).abs() < 200.0);
    }

    #[test]
    fn poisoned_probe_features_still_yield_finite_predictions() {
        // Satellite guard test: even with a warm, benign history, a NaN or
        // infinite feature in the *probe* vector must not surface as a
        // non-finite prediction — the clamp sits between the features and
        // the fitted model in both MLR and SLR.
        let mut mlr = MlrPredictor::with_defaults();
        let mut slr = SlrPredictor::on_packets();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            let mut f = FeatureVector::zeros();
            f.set(FeatureId::Packets, rng.gen_range(500.0..1500.0));
            let y = 100.0 * f.packets();
            mlr.predict(&f);
            mlr.observe(&f, y);
            slr.predict(&f);
            slr.observe(&f, y);
        }
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut f = FeatureVector::zeros();
            f.set(FeatureId::Packets, poison);
            let mlr_prediction = mlr.predict(&f);
            let slr_prediction = slr.predict(&f);
            assert!(
                mlr_prediction.is_finite() && mlr_prediction >= 0.0,
                "MLR must absorb a {poison} feature (got {mlr_prediction})"
            );
            assert!(
                slr_prediction.is_finite() && slr_prediction >= 0.0,
                "SLR must absorb a {poison} feature (got {slr_prediction})"
            );
        }
    }

    #[test]
    fn predictions_are_never_negative() {
        let mut p = MlrPredictor::with_defaults();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let mut f = FeatureVector::zeros();
            f.set(FeatureId::Packets, rng.gen_range(0.0..10.0));
            let predicted = p.predict(&f);
            assert!(predicted >= 0.0);
            p.observe(&f, rng.gen_range(0.0..5.0));
        }
    }
}
