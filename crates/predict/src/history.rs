//! Sliding window of (features, observed cycles) observations.

use crate::guard::{clamp_features, clamp_sample};
use netshed_features::{FeatureVector, FEATURE_COUNT};
use netshed_sketch::{StateError, StateReader, StateWriter};
use std::collections::VecDeque;

/// The regression history of one query: the most recent `capacity`
/// observations of (feature vector, CPU cycles actually used).
///
/// Section 3.3.1 of the paper studies the history length trade-off and
/// settles on 60 observations (6 s of 100 ms batches), which is the default
/// used by [`crate::MlrConfig`].
#[derive(Debug, Clone)]
pub struct History {
    capacity: usize,
    entries: VecDeque<(FeatureVector, f64)>,
}

impl History {
    /// Creates an empty history holding at most `capacity` observations.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        Self { capacity, entries: VecDeque::with_capacity(capacity) }
    }

    /// Maximum number of observations retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of observations currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no observations are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an observation, evicting the oldest one if full.
    ///
    /// The observation is sanitized on the way in ([`crate::guard`]): the
    /// history is the source of every design matrix, so a non-finite feature
    /// or response must be neutralised *here*, before it can poison an OLS
    /// solve. The clamp is the identity for everything benign traffic
    /// produces.
    pub fn push(&mut self, features: FeatureVector, cycles: f64) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((clamp_features(&features), clamp_sample(cycles)));
    }

    /// Drops the oldest observations, keeping at most the newest `keep`.
    ///
    /// This is the robust predictor's forgetting step: when the observed
    /// cost departs violently from the model (a regime shift or an attack),
    /// the stale pre-shift window is what keeps the regression wrong, so it
    /// is discarded and the model relearns from the newest observations.
    pub fn forget_oldest(&mut self, keep: usize) {
        while self.entries.len() > keep {
            self.entries.pop_front();
        }
    }

    /// Iterates over the stored observations from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &(FeatureVector, f64)> {
        self.entries.iter()
    }

    /// Returns the response column (observed cycles) as a vector.
    pub fn responses(&self) -> Vec<f64> {
        self.entries.iter().map(|(_, y)| *y).collect()
    }

    /// Writes the response column into `out`, reusing its allocation.
    ///
    /// The allocation-free sibling of [`History::responses`], used by the
    /// per-bin prediction hot path.
    pub fn fill_responses(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.entries.iter().map(|(_, y)| *y));
    }

    /// Returns the values of the feature at `feature_index` across the history.
    pub fn feature_column(&self, feature_index: usize) -> Vec<f64> {
        self.entries.iter().map(|(f, _)| f.get_index(feature_index)).collect()
    }

    /// Writes the values of the feature at `feature_index` into `out`, which
    /// must already have `len()` elements (one slot per observation).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn fill_feature_column(&self, feature_index: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "column buffer must match the history length");
        for (slot, (features, _)) in out.iter_mut().zip(self.entries.iter()) {
            *slot = features.get_index(feature_index);
        }
    }

    /// Discards all observations.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Replaces the most recent observation's response value.
    ///
    /// Section 3.2.4: when a context switch corrupts a CPU measurement the
    /// paper discards the observation and substitutes the predicted value so
    /// the regression history is not polluted.
    pub fn replace_last_response(&mut self, cycles: f64) {
        if let Some(last) = self.entries.back_mut() {
            last.1 = cycles;
        }
    }

    /// Serializes the window (capacity + every observation, oldest first).
    pub fn save_state(&self, writer: &mut StateWriter) {
        writer.usize(self.capacity);
        writer.usize(self.entries.len());
        for (features, cycles) in &self.entries {
            for index in 0..FEATURE_COUNT {
                writer.f64(features.get_index(index));
            }
            writer.f64(*cycles);
        }
    }

    /// Restores a window saved by [`History::save_state`] into a history of
    /// the same capacity.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        let capacity = reader.usize()?;
        if capacity != self.capacity {
            return Err(StateError::mismatch("history capacity", capacity, self.capacity));
        }
        let entries = reader.usize()?;
        if entries > capacity {
            return Err(StateError::corrupt(format!(
                "history holds {entries} observations but its capacity is {capacity}"
            )));
        }
        self.entries.clear();
        for _ in 0..entries {
            let mut values = [0.0; FEATURE_COUNT];
            for value in &mut values {
                *value = reader.f64()?;
            }
            let cycles = reader.f64()?;
            self.entries.push_back((FeatureVector::from_values(values), cycles));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_evicts_oldest_when_full() {
        let mut h = History::new(3);
        for i in 0..5 {
            h.push(FeatureVector::zeros(), i as f64);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.responses(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn feature_column_tracks_feature_values() {
        let mut h = History::new(4);
        for i in 0..3 {
            let mut f = FeatureVector::zeros();
            f.set(netshed_features::FeatureId::Packets, i as f64 * 10.0);
            h.push(f, 0.0);
        }
        assert_eq!(h.feature_column(0), vec![0.0, 10.0, 20.0]);
    }

    #[test]
    fn replace_last_response_overwrites_only_newest() {
        let mut h = History::new(3);
        h.push(FeatureVector::zeros(), 1.0);
        h.push(FeatureVector::zeros(), 2.0);
        h.replace_last_response(99.0);
        assert_eq!(h.responses(), vec![1.0, 99.0]);
    }

    #[test]
    #[should_panic(expected = "history capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = History::new(0);
    }

    #[test]
    fn push_never_stores_non_finite_values() {
        let mut h = History::new(4);
        let mut f = FeatureVector::zeros();
        f.set(netshed_features::FeatureId::Packets, f64::NAN);
        f.set(netshed_features::FeatureId::Bytes, f64::INFINITY);
        h.push(f, f64::NAN);
        h.push(FeatureVector::zeros(), f64::NEG_INFINITY);
        for (features, cycles) in h.iter() {
            assert!(cycles.is_finite() && *cycles >= 0.0);
            for index in 0..FEATURE_COUNT {
                assert!(features.get_index(index).is_finite());
            }
        }
        assert_eq!(h.responses(), vec![0.0, 0.0]);
    }

    #[test]
    fn forget_oldest_keeps_the_newest_window() {
        let mut h = History::new(10);
        for i in 0..7 {
            h.push(FeatureVector::zeros(), f64::from(i));
        }
        h.forget_oldest(3);
        assert_eq!(h.responses(), vec![4.0, 5.0, 6.0]);
        h.forget_oldest(5);
        assert_eq!(h.len(), 3, "forgetting never grows the window");
        h.forget_oldest(0);
        assert!(h.is_empty());
    }
}
