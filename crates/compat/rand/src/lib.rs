//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors the
//! small slice of the `rand` 0.8 API the netshed crates actually use:
//! [`rngs::StdRng`], the [`Rng`] and [`SeedableRng`] traits, `gen`,
//! `gen_range`, `gen_bool` and `fill`. The generator is xoshiro256++ seeded
//! through SplitMix64 — not the ChaCha12 stream of upstream `StdRng`, but the
//! netshed test-suite only relies on determinism for a given seed, never on a
//! particular stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// A deterministic, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }

    impl StdRng {
        /// The raw generator state, for checkpointing a stream mid-run.
        pub fn state(&self) -> [u64; 4] {
            self.state
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        /// The restored generator continues the exact same stream.
        pub fn from_state(state: [u64; 4]) -> Self {
            StdRng { state }
        }
    }
}

pub use rngs::StdRng;

/// Seeding support for deterministic generators.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng { state: [next(), next(), next(), next()] }
    }
}

/// Types that can be sampled uniformly from the generator's output stream
/// (the role of `rand::distributions::Standard`).
pub trait Standard {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from (the role of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.gen::<f64>()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * rng.gen::<f64>()
    }
}

/// The user-facing generator trait.
pub trait Rng {
    /// Produces the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain).
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_stays_in_range_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(samples.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1024..=65535u16);
            assert!((1024..=65535).contains(&y));
            let z = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn fill_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }
}
