//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the netshed property tests use: the [`proptest!`]
//! macro, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, range and
//! tuple strategies, and `collection::{vec, hash_set}`. Each test runs a
//! fixed number of randomly generated cases from a seed derived from the test
//! name, so failures are deterministic and reproducible. Unlike upstream
//! proptest there is no shrinking: a failing case reports its inputs via the
//! panic message of the assertion that fired.

#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng, StdRng};
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 64;

/// Derives a deterministic RNG for a named test.
pub fn test_rng(name: &str) -> StdRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(seed)
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Hash, HashSet, Range, Rng, StdRng, Strategy};

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s of values from an element strategy.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates hash sets with target sizes drawn from `size` (the actual
    /// size can be smaller if the element space is nearly exhausted).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut set = HashSet::with_capacity(target);
            // Bounded retries so a small element space cannot loop forever.
            for _ in 0..target.saturating_mul(20).max(20) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_rng(stringify!($name));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let case = move || $body;
                    case();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 5usize..50, x in -2.0f64..2.0) {
            prop_assert!((5..50).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_strategy_sizes(values in collection::vec(0u32..100, 3..8)) {
            prop_assert!((3..8).contains(&values.len()));
            prop_assert!(values.iter().all(|v| *v < 100));
        }

        #[test]
        fn hash_set_strategy_is_a_set(keys in collection::hash_set(0u32..1000, 1..20)) {
            prop_assert!(!keys.is_empty());
            prop_assert!(keys.len() < 20);
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n > 3);
            prop_assert!(n > 3);
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use rand::Rng;
        let mut a = crate::test_rng("alpha");
        let mut b = crate::test_rng("alpha");
        let mut c = crate::test_rng("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }
}
