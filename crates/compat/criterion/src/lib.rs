//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API surface `benches/micro.rs` uses: [`Criterion`],
//! [`Bencher::iter`], [`Criterion::benchmark_group`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a plain
//! wall-clock mean over an adaptively chosen iteration count — no outlier
//! rejection or statistical comparison, but plenty to eyeball the relative
//! costs the benches exist to show.

#![forbid(unsafe_code)]

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Returns `true` when the benchmark binary was invoked with `--smoke`
/// (e.g. `cargo bench --bench micro -- --smoke`): measurement windows shrink
/// from ~200 ms to ~10 ms per benchmark so CI can exercise every bench
/// cheaply without pretending to produce stable numbers.
pub fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|arg| arg == "--smoke"))
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time.
    // The name mirrors upstream criterion's `Bencher::iter`, which benches
    // call as `b.iter(|| ...)`; it is a measurement loop, not an iterator.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also sizes the measurement loop so it runs ~200 ms
        // (~10 ms under `--smoke`).
        let (warmup_ms, measure_ns, max_iters) = if smoke_mode() {
            (5, 10_000_000u128, 10_000)
        } else {
            (50, 200_000_000u128, 1_000_000)
        };
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(warmup_ms) {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        let target = (measure_ns / per_iter.max(1)).clamp(10, max_iters) as u64;

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = target;
    }

    fn report(&self, name: &str) {
        let nanos = self.elapsed.as_nanos() as f64 / self.iterations.max(1) as f64;
        let (value, unit) = if nanos >= 1e6 {
            (nanos / 1e6, "ms")
        } else if nanos >= 1e3 {
            (nanos / 1e3, "µs")
        } else {
            (nanos, "ns")
        };
        println!("{name:<44} {value:>10.3} {unit}/iter  ({} iterations)", self.iterations);
    }
}

/// The benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { iterations: 0, elapsed: Duration::ZERO };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self, group: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.group, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finishes the group (report-only in this implementation).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_without_panicking() {
        let mut criterion = Criterion::default();
        criterion.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_run_nested_benches() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| black_box(0u64)));
        group.finish();
    }
}
