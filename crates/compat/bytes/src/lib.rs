//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset netshed uses: [`Bytes`], a cheaply cloneable,
//! reference-counted, immutable byte slice with O(1) sub-slicing. The storage
//! is a shared `Arc<[u8]>` plus a window, so cloning a payload or slicing a
//! template never copies the underlying bytes.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty byte slice.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Wraps a static slice. (Unlike upstream `bytes` this copies once into
    /// shared storage; netshed only uses it for short signature constants.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `bytes` into new shared storage.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(bytes);
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    fn from_vec(vec: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(vec.into_boxed_slice());
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    /// Number of bytes in the slice.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice sharing the same storage (O(1), no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} out of bounds of {len}");
        Bytes { data: Arc::clone(&self.data), start: self.start + begin, end: self.start + end }
    }

    /// The slice contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        Bytes::from_vec(vec)
    }
}

impl From<&[u8]> for Bytes {
    fn from(bytes: &[u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_shares_storage_without_copying() {
        let bytes = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let slice = bytes.slice(1..4);
        assert_eq!(&slice[..], &[2, 3, 4]);
        assert_eq!(slice.len(), 3);
        let nested = slice.slice(..2);
        assert_eq!(&nested[..], &[2, 3]);
    }

    #[test]
    fn equality_compares_contents() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, b"hello" as &[u8]);
    }

    #[test]
    fn open_ended_slices() {
        let bytes = Bytes::from_static(b"abcdef");
        assert_eq!(&bytes.slice(3..)[..], b"def");
        assert_eq!(&bytes.slice(..3)[..], b"abc");
        assert_eq!(&bytes.slice(..)[..], b"abcdef");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let bytes = Bytes::from_static(b"abc");
        let _ = bytes.slice(1..5);
    }
}
