//! Quickstart: run the predictive load shedding monitor over a synthetic
//! trace with the paper's seven-query set and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use netshed::monitor::{AllocationPolicy, Monitor, MonitorConfig, ReferenceRunner, Strategy};
use netshed::queries::{QueryKind, QuerySpec};
use netshed::trace::{TraceGenerator, TraceProfile};

fn main() {
    // 1. Build a synthetic stand-in for the CESCA-II trace (full payloads).
    let trace_config = TraceProfile::CescaII.default_config(42);
    let mut generator = TraceGenerator::new(trace_config);
    let batches = generator.batches(300); // 30 seconds of traffic

    // 2. The seven queries of the Chapter 4 evaluation.
    let specs: Vec<QuerySpec> =
        QueryKind::CHAPTER4_SET.iter().map(|kind| QuerySpec::new(*kind)).collect();

    // 3. Measure the unconstrained demand so we can create a 2x overload.
    let demand =
        netshed::monitor::reference::measure_total_demand(&specs, &batches[..50]);
    let capacity = demand / 2.0;
    println!("unconstrained demand : {demand:>12.0} cycles/bin");
    println!("system capacity      : {capacity:>12.0} cycles/bin (overload factor K = 0.5)\n");

    // 4. Run the predictive load shedding system and, in parallel, a
    //    reference execution that provides the accuracy ground truth.
    let config = MonitorConfig::default()
        .with_capacity(capacity)
        .with_strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt));
    let mut monitor = Monitor::new(config);
    for spec in &specs {
        monitor.add_query(spec);
    }
    let mut reference = ReferenceRunner::new(&specs, 1_000_000);

    let mut errors: std::collections::HashMap<&str, Vec<f64>> = Default::default();
    let mut cycles_used = Vec::new();
    for batch in &batches {
        let record = monitor.process_batch(batch);
        let truth = reference.process_batch(batch);
        cycles_used.push(record.total_cycles());
        if let (Some(outputs), Some(truths)) = (record.interval_outputs, truth) {
            for ((name, output), (_, truth)) in outputs.iter().zip(&truths) {
                errors.entry(name).or_default().push(output.error_against(truth));
            }
        }
    }

    // 5. Report.
    let mean_cycles = cycles_used.iter().sum::<f64>() / cycles_used.len() as f64;
    println!("mean cycles per bin  : {mean_cycles:>12.0} ({:.0}% of capacity)", 100.0 * mean_cycles / capacity);
    println!("uncontrolled drops   : {:>12}", monitor.uncontrolled_drops());
    println!("\nper-query mean error under 2x overload:");
    let mut names: Vec<&&str> = errors.keys().collect();
    names.sort();
    for name in names {
        let errs = &errors[*name];
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        println!("  {name:<16} {:>6.2}%", mean * 100.0);
    }
}
