//! Quickstart: run the predictive load shedding monitor over a synthetic
//! trace with the paper's seven-query set and print what happened.
//!
//! The whole experiment is the streaming pipeline in one call: build a
//! validated monitor, point it at a `PacketSource`, and let observers do the
//! bookkeeping.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use netshed::prelude::*;

/// Batch count, overridable for quick CI runs (`NETSHED_BATCHES=60`).
fn batch_count(default: usize) -> usize {
    std::env::var("NETSHED_BATCHES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Counts how often the control plane decided to shed (and why not, when it
/// did not) — the per-bin `ControlDecision` makes the loop introspectable.
#[derive(Default)]
struct ShedStats {
    overloaded_bins: u64,
    total_bins: u64,
}

impl RunObserver for ShedStats {
    fn on_decision(&mut self, _bin_index: u64, decision: &ControlDecision) {
        self.total_bins += 1;
        if decision.reason == DecisionReason::Overload {
            self.overloaded_bins += 1;
        }
    }
}

fn main() -> Result<(), NetshedError> {
    // 1. A synthetic stand-in for the CESCA-II trace (full payloads), and the
    //    seven queries of the Chapter 4 evaluation.
    let trace_config = TraceProfile::CescaII.default_config(42);
    let specs: Vec<QuerySpec> =
        QueryKind::CHAPTER4_SET.iter().map(|kind| QuerySpec::new(*kind)).collect();

    // 2. Record 30 s of traffic so the same batches can size the capacity and
    //    then drive the run.
    let batches = batch_count(300);
    let mut recording = BatchReplay::record(&mut TraceGenerator::new(trace_config), batches);

    // 3. Measure the unconstrained demand so we can create a 2x overload.
    let warmup = recording.batches().len().min(50);
    let demand =
        netshed::monitor::reference::measure_total_demand(&specs, &recording.batches()[..warmup])
            .expect("valid query specs");
    let capacity = demand / 2.0;
    println!("unconstrained demand : {demand:>12.0} cycles/bin");
    println!("system capacity      : {capacity:>12.0} cycles/bin (overload factor K = 0.5)\n");

    // 4. Build the monitor and drive the full experiment with one call. The
    //    accuracy tracker runs the reference execution (the ground truth of
    //    Section 2.3.3) alongside.
    let mut monitor = Monitor::builder()
        .capacity(capacity)
        .strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
        .queries(specs.clone())
        .build()?;
    let mut observers = (
        AccuracyTracker::new(&specs, monitor.config().measurement_interval_us),
        ShedStats::default(),
    );
    let summary = monitor.run(&mut recording, &mut observers)?;
    let (accuracy, decisions) = observers;

    // 5. Report.
    let mean_cycles = summary.mean_cycles_per_bin();
    println!(
        "mean cycles per bin  : {mean_cycles:>12.0} ({:.0}% of capacity)",
        100.0 * mean_cycles / capacity
    );
    println!("uncontrolled drops   : {:>12}", summary.total_uncontrolled_drops);
    println!(
        "bins shed            : {:>12} (of {}, per the control-plane decisions)",
        decisions.overloaded_bins, decisions.total_bins
    );
    println!("\nper-query mean error under 2x overload:");
    let errors = accuracy.mean_error();
    let mut names: Vec<&String> = errors.keys().collect();
    names.sort();
    for name in names {
        println!("  {name:<16} {:>6.2}%", errors[name] * 100.0);
    }
    Ok(())
}
