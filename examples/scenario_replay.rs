//! Scenario record & replay: declare a workload, record it to the binary
//! trace format, replay the recording, and prove the replay is
//! bit-identical to the live run.
//!
//! ```sh
//! cargo run --release --example scenario_replay
//! ```

use netshed::prelude::*;
use netshed_trace::encode_batches;
use netshed_trace::scenario::builtin;

fn main() -> Result<(), NetshedError> {
    // 1. A declarative workload: the built-in DDoS scenario (calm traffic,
    //    a flood window, recovery). Any hand-built `Scenario` works the
    //    same way.
    let scenario = builtin("ddos-spike").expect("built-in scenario");
    println!("scenario {:?}: {} bins over {} link(s)", scenario.name(), scenario.total_bins(), {
        scenario.links().len()
    });
    for phase in scenario.links().iter().flat_map(netshed::Link::phases) {
        println!("  phase {:<10} {:>3} bins", phase.name(), phase.duration_bins());
    }

    // 2. Record it: scenario → batches → `.nstr` bytes (a file on disk in
    //    real deployments; in-memory here).
    let batches = scenario.generate()?;
    let recording = encode_batches(&batches, scenario.bin_duration_us())?;
    println!(
        "\nrecorded {} packets into {} bytes (checksummed, versioned)",
        batches.iter().map(Batch::len).sum::<usize>(),
        recording.len()
    );

    // 3. Run the monitor twice — once on the live scenario source, once on
    //    the decoded recording — and fingerprint both runs.
    let specs = vec![
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::TopK),
    ];
    let demand = netshed::monitor::reference::measure_total_demand(&specs, &batches[..10])
        .expect("valid query specs");
    let capacity = demand / 2.0;
    let mut fingerprints = Vec::new();
    for (label, replayed) in [("live", false), ("replayed", true)] {
        let mut monitor =
            Monitor::builder().capacity(capacity).seed(7).queries(specs.clone()).build()?;
        let mut digest = DigestObserver::new();
        let summary = if replayed {
            let mut source = TraceReader::new(&recording[..])?.into_replay()?;
            monitor.run(&mut source, &mut digest)?
        } else {
            let mut source = scenario.compile()?;
            monitor.run(&mut source, &mut digest)?
        };
        println!(
            "{label:<9} bins {:>3}  packets {:>6}  mean cycles/bin {:>9.0}",
            summary.bins,
            summary.total_packets,
            summary.mean_cycles_per_bin()
        );
        fingerprints.push(digest.digest());
    }

    // 4. The replay contract: both fingerprints are identical.
    println!("\nlive     {}", fingerprints[0]);
    println!("replayed {}", fingerprints[1]);
    assert_eq!(fingerprints[0], fingerprints[1], "replay must be bit-identical");
    println!("replay is bit-identical to the live run");
    Ok(())
}
