//! Robustness against traffic anomalies (Sections 3.4.3 and 4.5.5).
//!
//! A synthetic SYN-flood / DDoS attack is injected into the trace. The same
//! query set is run once without load shedding (the original CoMo behaviour:
//! uncontrolled drops once the capture buffer fills), once with the
//! predictive load shedder, and once with the `OraclePolicy` — a control
//! policy that allocates from the bin's *actual* measured cycles, the upper
//! bound every predictor is chasing. The example prints the per-interval
//! error of the `flows` query — the one most affected by a flood of spoofed
//! sources — under all three systems.
//!
//! ```sh
//! cargo run --release --example ddos_resilience
//! ```

use netshed::fairness::MmfsPkt;
use netshed::prelude::*;

/// Batch count, overridable for quick CI runs (`NETSHED_BATCHES=60`).
fn batch_count(default: usize) -> usize {
    std::env::var("NETSHED_BATCHES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn attack_trace(seed: u64, batches: usize) -> BatchReplay {
    let mut generator = TraceGenerator::new(TraceProfile::CescaI.default_config(seed));
    // A DDoS flood with spoofed sources over the middle third of the run,
    // going idle every other second to make the workload hard to predict
    // (Section 3.4.3).
    generator.add_anomaly(
        Anomaly::new(
            AnomalyKind::DdosFlood { target: 0x0a00_0001 },
            batches as u64 / 3,
            2 * batches as u64 / 3,
            1500,
        )
        .with_duty_cycle(20),
    );
    BatchReplay::record(&mut generator, batches)
}

fn specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::TopK),
    ]
}

fn flows_errors(
    builder: MonitorBuilder,
    capacity: f64,
    recording: &BatchReplay,
) -> Result<Vec<f64>, NetshedError> {
    let specs = specs();
    let mut monitor = builder.capacity(capacity).queries(specs.clone()).build()?;
    let mut accuracy = AccuracyTracker::new(&specs, monitor.config().measurement_interval_us);
    monitor.run(&mut recording.clone(), &mut accuracy)?;
    Ok(accuracy.error_series().get("flows").cloned().unwrap_or_default())
}

fn main() -> Result<(), NetshedError> {
    let batches = batch_count(300);
    let recording = attack_trace(7, batches);
    // Capacity sized for normal traffic: the attack pushes demand well above it.
    let warmup = (batches / 4).clamp(1, 80);
    let normal_demand =
        netshed::monitor::reference::measure_total_demand(&specs(), &recording.batches()[..warmup])
            .expect("valid query specs");
    let capacity = normal_demand * 1.1;

    let without =
        flows_errors(Monitor::builder().strategy(Strategy::NoShedding), capacity, &recording)?;
    let with = flows_errors(
        Monitor::builder().strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt)),
        capacity,
        &recording,
    )?;
    // The oracle is not deployable (it measures each bin's true cost on a
    // shadow execution) but bounds what any predictor could achieve.
    let oracle = flows_errors(
        Monitor::builder().with_policy(OraclePolicy::new(MmfsPkt)),
        capacity,
        &recording,
    )?;

    let attack_from = batches / 30;
    let attack_to = 2 * batches / 30;
    println!(
        "flows query error per 1 s interval (DDoS active from t={attack_from} s to t={attack_to} s)\n"
    );
    println!("{:>4}  {:>12}  {:>12}  {:>12}", "t(s)", "no shedding", "predictive", "oracle");
    for (i, ((a, b), c)) in without.iter().zip(&with).zip(&oracle).enumerate() {
        println!("{:>4}  {:>11.1}%  {:>11.1}%  {:>11.1}%", i + 1, a * 100.0, b * 100.0, c * 100.0);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64 * 100.0;
    println!(
        "\nmean error: no shedding {:.1}%  |  predictive {:.1}%  |  oracle {:.1}%",
        mean(&without),
        mean(&with),
        mean(&oracle)
    );
    Ok(())
}
