//! Robustness against traffic anomalies (Sections 3.4.3 and 4.5.5).
//!
//! A synthetic SYN-flood / DDoS attack is injected into the trace. The same
//! query set is run once without load shedding (the original CoMo behaviour:
//! uncontrolled drops once the capture buffer fills) and once with the
//! predictive load shedder. The example prints the per-interval error of the
//! `flows` query — the one most affected by a flood of spoofed sources —
//! under both systems.
//!
//! ```sh
//! cargo run --release --example ddos_resilience
//! ```

use netshed::prelude::*;

const BATCHES: usize = 300;

fn attack_trace(seed: u64) -> BatchReplay {
    let mut generator = TraceGenerator::new(TraceProfile::CescaI.default_config(seed));
    // A DDoS flood with spoofed sources between seconds 10 and 20, going idle
    // every other second to make the workload hard to predict (Section 3.4.3).
    generator.add_anomaly(
        Anomaly::new(AnomalyKind::DdosFlood { target: 0x0a00_0001 }, 100, 200, 1500)
            .with_duty_cycle(20),
    );
    BatchReplay::record(&mut generator, BATCHES)
}

fn specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::TopK),
    ]
}

fn flows_errors(
    strategy: Strategy,
    capacity: f64,
    recording: &BatchReplay,
) -> Result<Vec<f64>, NetshedError> {
    let specs = specs();
    let mut monitor =
        Monitor::builder().capacity(capacity).strategy(strategy).queries(specs.clone()).build()?;
    let mut accuracy = AccuracyTracker::new(&specs, monitor.config().measurement_interval_us);
    monitor.run(&mut recording.clone(), &mut accuracy)?;
    Ok(accuracy.error_series().get("flows").cloned().unwrap_or_default())
}

fn main() -> Result<(), NetshedError> {
    let recording = attack_trace(7);
    // Capacity sized for normal traffic: the attack pushes demand well above it.
    let normal_demand =
        netshed::monitor::reference::measure_total_demand(&specs(), &recording.batches()[..80]);
    let capacity = normal_demand * 1.1;

    let without = flows_errors(Strategy::NoShedding, capacity, &recording)?;
    let with = flows_errors(Strategy::Predictive(AllocationPolicy::MmfsPkt), capacity, &recording)?;

    println!("flows query error per 1 s interval (DDoS active from t=10 s to t=20 s)\n");
    println!("{:>4}  {:>12}  {:>12}", "t(s)", "no shedding", "predictive");
    for (i, (a, b)) in without.iter().zip(&with).enumerate() {
        println!("{:>4}  {:>11.1}%  {:>11.1}%", i + 1, a * 100.0, b * 100.0);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64 * 100.0;
    println!("\nmean error: no shedding {:.1}%  |  predictive {:.1}%", mean(&without), mean(&with));
    Ok(())
}
