//! Robustness against traffic anomalies (Sections 3.4.3 and 4.5.5).
//!
//! A synthetic SYN-flood / DDoS attack is injected into the trace. The same
//! query set is run once without load shedding (the original CoMo behaviour:
//! uncontrolled drops once the capture buffer fills) and once with the
//! predictive load shedder. The example prints the per-interval error of the
//! `flows` query — the one most affected by a flood of spoofed sources —
//! under both systems.
//!
//! ```sh
//! cargo run --release --example ddos_resilience
//! ```

use netshed::monitor::{AllocationPolicy, Monitor, MonitorConfig, ReferenceRunner, Strategy};
use netshed::queries::{QueryKind, QuerySpec};
use netshed::trace::{Anomaly, AnomalyKind, TraceGenerator, TraceProfile};

const BATCHES: usize = 300;

fn build_trace(seed: u64) -> Vec<netshed::trace::Batch> {
    let mut generator = TraceGenerator::new(TraceProfile::CescaI.default_config(seed));
    // A DDoS flood with spoofed sources between seconds 10 and 20, going idle
    // every other second to make the workload hard to predict (Section 3.4.3).
    generator.add_anomaly(
        Anomaly::new(AnomalyKind::DdosFlood { target: 0x0a00_0001 }, 100, 200, 1500)
            .with_duty_cycle(20),
    );
    generator.batches(BATCHES)
}

fn run(strategy: Strategy, capacity: f64, batches: &[netshed::trace::Batch]) -> Vec<f64> {
    let specs = vec![
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::TopK),
    ];
    let config = MonitorConfig::default().with_capacity(capacity).with_strategy(strategy);
    let mut monitor = Monitor::new(config);
    for spec in &specs {
        monitor.add_query(spec);
    }
    let mut reference = ReferenceRunner::new(&specs, 1_000_000);
    let mut flows_errors = Vec::new();
    for batch in batches {
        let record = monitor.process_batch(batch);
        let truths = reference.process_batch(batch);
        if let (Some(outputs), Some(truths)) = (record.interval_outputs, truths) {
            for ((name, output), (_, truth)) in outputs.iter().zip(&truths) {
                if *name == "flows" {
                    flows_errors.push(output.error_against(truth));
                }
            }
        }
    }
    flows_errors
}

fn main() {
    let batches = build_trace(7);
    let specs = vec![
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::TopK),
    ];
    // Capacity sized for normal traffic: the attack pushes demand well above it.
    let normal_demand =
        netshed::monitor::reference::measure_total_demand(&specs, &batches[..80]);
    let capacity = normal_demand * 1.1;

    let without = run(Strategy::NoShedding, capacity, &batches);
    let with = run(Strategy::Predictive(AllocationPolicy::MmfsPkt), capacity, &batches);

    println!("flows query error per 1 s interval (DDoS active from t=10 s to t=20 s)\n");
    println!("{:>4}  {:>12}  {:>12}", "t(s)", "no shedding", "predictive");
    for (i, (a, b)) in without.iter().zip(&with).enumerate() {
        println!("{:>4}  {:>11.1}%  {:>11.1}%", i + 1, a * 100.0, b * 100.0);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64 * 100.0;
    println!("\nmean error: no shedding {:.1}%  |  predictive {:.1}%", mean(&without), mean(&with));
}
