//! Custom load shedding (Chapter 6).
//!
//! The `p2p-detector` query is not robust to packet sampling: dropping the
//! packets that carry the protocol handshake makes it miss entire flows.
//! Chapter 6 lets such queries shed load themselves while the system polices
//! the cycles they use. This example compares three configurations under a
//! 2x overload:
//!
//! 1. the detector under system-side packet sampling,
//! 2. the detector using its custom shedding method (honest),
//! 3. a *selfish* detector that ignores the assigned rate — and gets
//!    penalised by the enforcement policy.
//!
//! ```sh
//! cargo run --release --example custom_shedding
//! ```

use netshed::prelude::*;

/// Batch count, overridable for quick CI runs (`NETSHED_BATCHES=60`).
fn batch_count(default: usize) -> usize {
    std::env::var("NETSHED_BATCHES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct Outcome {
    p2p_accuracy: f64,
    other_accuracy: f64,
    p2p_disabled_bins: usize,
}

/// Counts the bins in which one query instance was disabled.
struct DisabledCounter {
    id: QueryId,
    bins: usize,
}

impl RunObserver for DisabledCounter {
    fn on_bin(&mut self, record: &BinRecord) {
        if record.query(self.id).is_some_and(|q| q.disabled) {
            self.bins += 1;
        }
    }
}

fn run(
    p2p_spec: QuerySpec,
    capacity: f64,
    recording: &BatchReplay,
) -> Result<Outcome, NetshedError> {
    let specs = vec![
        p2p_spec,
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::Application),
    ];
    let mut monitor = Monitor::builder()
        .capacity(capacity)
        .strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
        .queries(specs.clone())
        .build()?;
    let p2p_id = monitor.query_handles()[0].0;

    let mut observers = (
        AccuracyTracker::new(&specs, monitor.config().measurement_interval_us),
        DisabledCounter { id: p2p_id, bins: 0 },
    );
    monitor.run(&mut recording.clone(), &mut observers)?;
    let (accuracy, disabled) = observers;

    let mut p2p_accuracy = 0.0;
    let mut other_sum = 0.0;
    let mut other_count = 0usize;
    for (name, value) in accuracy.mean_accuracy() {
        if name == "p2p-detector" {
            p2p_accuracy = value;
        } else {
            other_sum += value;
            other_count += 1;
        }
    }
    Ok(Outcome {
        p2p_accuracy,
        other_accuracy: other_sum / other_count.max(1) as f64,
        p2p_disabled_bins: disabled.bins,
    })
}

fn main() -> Result<(), NetshedError> {
    let mut generator = TraceGenerator::new(TraceProfile::UpcI.default_config(23));
    let recording = BatchReplay::record(&mut generator, batch_count(300));
    let base_specs = vec![
        QuerySpec::new(QueryKind::P2pDetector),
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::Application),
    ];
    let warmup = recording.batches().len().min(50);
    let demand = netshed::monitor::reference::measure_total_demand(
        &base_specs,
        &recording.batches()[..warmup],
    )?;
    let capacity = demand * 0.5;

    let sampled = run(QuerySpec::new(QueryKind::P2pDetector), capacity, &recording)?;
    let custom = run(
        QuerySpec::new(QueryKind::P2pDetector).with_custom(CustomBehavior::Honest),
        capacity,
        &recording,
    )?;
    let selfish = run(
        QuerySpec::new(QueryKind::P2pDetector).with_custom(CustomBehavior::Selfish),
        capacity,
        &recording,
    )?;

    println!("p2p-detector under 2x overload (higher accuracy is better)\n");
    println!(
        "{:<28} {:>14} {:>16} {:>16}",
        "configuration", "p2p accuracy", "other accuracy", "p2p disabled bins"
    );
    for (name, outcome) in [
        ("system packet sampling", &sampled),
        ("custom shedding (honest)", &custom),
        ("custom shedding (selfish)", &selfish),
    ] {
        println!(
            "{:<28} {:>13.2}  {:>15.2}  {:>16}",
            name, outcome.p2p_accuracy, outcome.other_accuracy, outcome.p2p_disabled_bins
        );
    }
    println!(
        "\nThe honest custom method preserves detection accuracy at the same cost, while the \
         selfish variant is caught by the enforcement policy and spends bins disabled."
    );
    Ok(())
}
