//! Custom load shedding (Chapter 6).
//!
//! The `p2p-detector` query is not robust to packet sampling: dropping the
//! packets that carry the protocol handshake makes it miss entire flows.
//! Chapter 6 lets such queries shed load themselves while the system polices
//! the cycles they use. This example compares three configurations under a
//! 2x overload:
//!
//! 1. the detector under system-side packet sampling,
//! 2. the detector using its custom shedding method (honest),
//! 3. a *selfish* detector that ignores the assigned rate — and gets
//!    penalised by the enforcement policy.
//!
//! ```sh
//! cargo run --release --example custom_shedding
//! ```

use netshed::monitor::{AllocationPolicy, Monitor, MonitorConfig, ReferenceRunner, Strategy};
use netshed::queries::{CustomBehavior, QueryKind, QuerySpec};
use netshed::trace::{TraceGenerator, TraceProfile};

const BATCHES: usize = 300;

struct Outcome {
    p2p_accuracy: f64,
    other_accuracy: f64,
    p2p_disabled_bins: usize,
}

fn run(p2p_spec: QuerySpec, capacity: f64, batches: &[netshed::trace::Batch]) -> Outcome {
    let specs = vec![
        p2p_spec,
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::Application),
    ];
    let config = MonitorConfig::default()
        .with_capacity(capacity)
        .with_strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt));
    let mut monitor = Monitor::new(config);
    for spec in &specs {
        monitor.add_query(spec);
    }
    let mut reference = ReferenceRunner::new(&specs, 1_000_000);
    let mut p2p_acc = Vec::new();
    let mut other_acc = Vec::new();
    let mut disabled = 0usize;
    for batch in batches {
        let record = monitor.process_batch(batch);
        if record.queries.first().is_some_and(|q| q.disabled) {
            disabled += 1;
        }
        let truths = reference.process_batch(batch);
        if let (Some(outputs), Some(truths)) = (record.interval_outputs, truths) {
            for ((name, output), (_, truth)) in outputs.iter().zip(&truths) {
                let accuracy = output.accuracy_against(truth);
                if *name == "p2p-detector" {
                    p2p_acc.push(accuracy);
                } else {
                    other_acc.push(accuracy);
                }
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    Outcome {
        p2p_accuracy: mean(&p2p_acc),
        other_accuracy: mean(&other_acc),
        p2p_disabled_bins: disabled,
    }
}

fn main() {
    let mut generator = TraceGenerator::new(TraceProfile::UpcI.default_config(23));
    let batches = generator.batches(BATCHES);
    let base_specs = vec![
        QuerySpec::new(QueryKind::P2pDetector),
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::Application),
    ];
    let demand =
        netshed::monitor::reference::measure_total_demand(&base_specs, &batches[..50]);
    let capacity = demand * 0.5;

    let sampled = run(QuerySpec::new(QueryKind::P2pDetector), capacity, &batches);
    let custom = run(
        QuerySpec::new(QueryKind::P2pDetector).with_custom(CustomBehavior::Honest),
        capacity,
        &batches,
    );
    let selfish = run(
        QuerySpec::new(QueryKind::P2pDetector).with_custom(CustomBehavior::Selfish),
        capacity,
        &batches,
    );

    println!("p2p-detector under 2x overload (higher accuracy is better)\n");
    println!(
        "{:<28} {:>14} {:>16} {:>16}",
        "configuration", "p2p accuracy", "other accuracy", "p2p disabled bins"
    );
    for (name, outcome) in [
        ("system packet sampling", &sampled),
        ("custom shedding (honest)", &custom),
        ("custom shedding (selfish)", &selfish),
    ] {
        println!(
            "{:<28} {:>13.2}  {:>15.2}  {:>16}",
            name, outcome.p2p_accuracy, outcome.other_accuracy, outcome.p2p_disabled_bins
        );
    }
    println!(
        "\nThe honest custom method preserves detection accuracy at the same cost, while the \
         selfish variant is caught by the enforcement policy and spends bins disabled."
    );
}
