//! Fairness of service with competing queries (Chapter 5).
//!
//! Nine queries with very different costs and minimum sampling-rate
//! constraints compete for a system that can only serve half of their total
//! demand (overload factor K = 0.5). The example compares the per-query
//! accuracy of three allocation strategies — the single global rate of
//! Chapter 4 (`eq_srates`) and the two max-min fair share flavours of
//! Chapter 5 (`mmfs_cpu`, `mmfs_pkt`) — and prints a table in the spirit of
//! Table 5.2, plus a numeric check of the allocation game's Nash equilibrium.
//!
//! ```sh
//! cargo run --release --example fair_sharing
//! ```

use netshed::fairness::{AllocationGame, FairnessMode};
use netshed::monitor::{AllocationPolicy, Monitor, MonitorConfig, ReferenceRunner, Strategy};
use netshed::queries::{QueryKind, QuerySpec};
use netshed::trace::{TraceGenerator, TraceProfile};
use std::collections::HashMap;

const BATCHES: usize = 300;

fn accuracy_per_query(
    policy: AllocationPolicy,
    capacity: f64,
    batches: &[netshed::trace::Batch],
    specs: &[QuerySpec],
) -> HashMap<&'static str, f64> {
    let config = MonitorConfig::default()
        .with_capacity(capacity)
        .with_strategy(Strategy::Predictive(policy));
    let mut monitor = Monitor::new(config);
    for spec in specs {
        monitor.add_query(spec);
    }
    let mut reference = ReferenceRunner::new(specs, 1_000_000);
    let mut sums: HashMap<&'static str, (f64, usize)> = HashMap::new();
    for batch in batches {
        let record = monitor.process_batch(batch);
        let truths = reference.process_batch(batch);
        if let (Some(outputs), Some(truths)) = (record.interval_outputs, truths) {
            for ((name, output), (_, truth)) in outputs.iter().zip(&truths) {
                let entry = sums.entry(name).or_insert((0.0, 0));
                entry.0 += output.accuracy_against(truth);
                entry.1 += 1;
            }
        }
    }
    sums.into_iter().map(|(name, (sum, count))| (name, sum / count.max(1) as f64)).collect()
}

fn main() {
    let mut generator = TraceGenerator::new(TraceProfile::CescaII.default_config(11));
    let batches = generator.batches(BATCHES);
    let specs: Vec<QuerySpec> =
        QueryKind::CHAPTER5_SET.iter().map(|kind| QuerySpec::new(*kind)).collect();

    let demand = netshed::monitor::reference::measure_total_demand(&specs, &batches[..50]);
    let capacity = demand * 0.5; // K = 0.5: demand is twice the capacity.

    println!("nine competing queries, K = 0.5 (demands are twice the capacity)\n");
    let eq = accuracy_per_query(AllocationPolicy::EqualRates, capacity, &batches, &specs);
    let cpu = accuracy_per_query(AllocationPolicy::MmfsCpu, capacity, &batches, &specs);
    let pkt = accuracy_per_query(AllocationPolicy::MmfsPkt, capacity, &batches, &specs);

    println!("{:<16} {:>10} {:>10} {:>10}", "query", "eq_srates", "mmfs_cpu", "mmfs_pkt");
    let mut names: Vec<&&'static str> = eq.keys().collect();
    names.sort();
    for name in &names {
        println!(
            "{:<16} {:>9.2}  {:>9.2}  {:>9.2}",
            name,
            eq.get(**name).copied().unwrap_or(0.0),
            cpu.get(**name).copied().unwrap_or(0.0),
            pkt.get(**name).copied().unwrap_or(0.0)
        );
    }
    let min = |m: &HashMap<&str, f64>| m.values().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\nminimum accuracy:   eq_srates {:.2} | mmfs_cpu {:.2} | mmfs_pkt {:.2}",
        min(&eq),
        min(&cpu),
        min(&pkt)
    );

    // Nash equilibrium check of Section 5.3: with 9 players and the measured
    // capacity, demanding exactly C/|Q| is an equilibrium.
    let game = AllocationGame::new(capacity, specs.len(), FairnessMode::Packet);
    let actions = vec![game.equilibrium_action(); specs.len()];
    println!(
        "\nNash equilibrium check: demanding C/|Q| = {:.0} cycles each is {}",
        game.equilibrium_action(),
        if game.is_nash_equilibrium(&actions, 200, 1e-6) { "an equilibrium" } else { "NOT an equilibrium" }
    );
}
