//! Fairness of service with competing queries (Chapter 5).
//!
//! Nine queries with very different costs and minimum sampling-rate
//! constraints compete for a system that can only serve half of their total
//! demand (overload factor K = 0.5). The example compares the per-query
//! accuracy of three allocation strategies — the single global rate of
//! Chapter 4 (`eq_srates`) and the two max-min fair share flavours of
//! Chapter 5 (`mmfs_cpu`, `mmfs_pkt`) — and prints a table in the spirit of
//! Table 5.2, plus a numeric check of the allocation game's Nash equilibrium.
//!
//! ```sh
//! cargo run --release --example fair_sharing
//! ```

use netshed::fairness::{AllocationGame, FairnessMode};
use netshed::prelude::*;
use std::collections::BTreeMap;

/// Batch count, overridable for quick CI runs (`NETSHED_BATCHES=60`).
fn batch_count(default: usize) -> usize {
    std::env::var("NETSHED_BATCHES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn accuracy_per_query(
    policy: AllocationPolicy,
    capacity: f64,
    recording: &BatchReplay,
    specs: &[QuerySpec],
) -> Result<BTreeMap<String, f64>, NetshedError> {
    let mut monitor = Monitor::builder()
        .capacity(capacity)
        .strategy(Strategy::Predictive(policy))
        .queries(specs.to_vec())
        .build()?;
    let mut accuracy = AccuracyTracker::new(specs, monitor.config().measurement_interval_us);
    monitor.run(&mut recording.clone(), &mut accuracy)?;
    Ok(accuracy.mean_accuracy())
}

fn main() -> Result<(), NetshedError> {
    let mut generator = TraceGenerator::new(TraceProfile::CescaII.default_config(11));
    let recording = BatchReplay::record(&mut generator, batch_count(300));
    let specs: Vec<QuerySpec> =
        QueryKind::CHAPTER5_SET.iter().map(|kind| QuerySpec::new(*kind)).collect();

    let warmup = recording.batches().len().min(50);
    let demand =
        netshed::monitor::reference::measure_total_demand(&specs, &recording.batches()[..warmup])
            .expect("valid query specs");
    let capacity = demand * 0.5; // K = 0.5: demand is twice the capacity.

    println!("nine competing queries, K = 0.5 (demands are twice the capacity)\n");
    let eq = accuracy_per_query(AllocationPolicy::EqualRates, capacity, &recording, &specs)?;
    let cpu = accuracy_per_query(AllocationPolicy::MmfsCpu, capacity, &recording, &specs)?;
    let pkt = accuracy_per_query(AllocationPolicy::MmfsPkt, capacity, &recording, &specs)?;

    println!("{:<16} {:>10} {:>10} {:>10}", "query", "eq_srates", "mmfs_cpu", "mmfs_pkt");
    let mut names: Vec<&String> = eq.keys().collect();
    names.sort();
    for name in &names {
        println!(
            "{:<16} {:>9.2}  {:>9.2}  {:>9.2}",
            name,
            eq.get(*name).copied().unwrap_or(0.0),
            cpu.get(*name).copied().unwrap_or(0.0),
            pkt.get(*name).copied().unwrap_or(0.0)
        );
    }
    let min = |m: &BTreeMap<String, f64>| m.values().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\nminimum accuracy:   eq_srates {:.2} | mmfs_cpu {:.2} | mmfs_pkt {:.2}",
        min(&eq),
        min(&cpu),
        min(&pkt)
    );

    // Nash equilibrium check of Section 5.3: with 9 players and the measured
    // capacity, demanding exactly C/|Q| is an equilibrium.
    let game = AllocationGame::new(capacity, specs.len(), FairnessMode::Packet);
    let actions = vec![game.equilibrium_action(); specs.len()];
    println!(
        "\nNash equilibrium check: demanding C/|Q| = {:.0} cycles each is {}",
        game.equilibrium_action(),
        if game.is_nash_equilibrium(&actions, 200, 1e-6) {
            "an equilibrium"
        } else {
            "NOT an equilibrium"
        }
    );
    Ok(())
}
