//! `netshed` — predictive load shedding for network monitoring applications.
//!
//! This is the facade crate: it re-exports the public API of every sub-crate
//! in the workspace. See `README.md` for an overview and `DESIGN.md` for the
//! mapping between the paper's system and the crates.

pub use netshed_fairness as fairness;
pub use netshed_features as features;
pub use netshed_linalg as linalg;
pub use netshed_monitor as monitor;
pub use netshed_predict as predict;
pub use netshed_queries as queries;
pub use netshed_sketch as sketch;
pub use netshed_trace as trace;
