//! `netshed` — predictive load shedding for network monitoring applications.
//!
//! This is the facade crate: it re-exports the public API of every sub-crate
//! in the workspace. See `README.md` for an overview and `DESIGN.md` for the
//! mapping between the paper's system and the crates.
//!
//! The streaming-first surface lives in [`prelude`]: build a validated
//! [`Monitor`] with [`Monitor::builder`], register queries dynamically
//! through [`QueryId`] handles, and drive a whole experiment with one
//! [`Monitor::run`] call over any [`PacketSource`]:
//!
//! ```
//! use netshed::prelude::*;
//!
//! let mut monitor = Monitor::builder()
//!     .capacity(1e12)
//!     .no_noise()
//!     .query(QuerySpec::new(QueryKind::Counter))
//!     .build()?;
//! let mut source = TraceGenerator::new(TraceConfig::default()).take_batches(20);
//! let summary = monitor.run(&mut source, &mut NullObserver)?;
//! assert_eq!(summary.bins + summary.empty_bins, 20);
//! # Ok::<(), NetshedError>(())
//! ```

#![forbid(unsafe_code)]

pub use netshed_fairness as fairness;
pub use netshed_features as features;
pub use netshed_linalg as linalg;
pub use netshed_monitor as monitor;
pub use netshed_predict as predict;
pub use netshed_queries as queries;
pub use netshed_sketch as sketch;
pub use netshed_trace as trace;

pub use netshed_fairness::{AllocationStrategy, QueryDemand};
pub use netshed_monitor::{
    AccuracyTracker, AllocationGameAttacker, AllocationPolicy, BinRecord, ControlContext,
    ControlDecision, ControlPolicy, DecisionReason, DegradationGuard, DegradationGuardConfig,
    DigestObserver, EnforcementConfig, ExecStats, HysteresisReactivePolicy, Monitor,
    MonitorBuilder, MonitorConfig, NetshedError, NoSheddingPolicy, NullObserver, OraclePolicy,
    PredictivePolicy, PredictorKind, QueryId, ReactivePolicy, RecordSink, ReferenceRunner,
    RunDigest, RunObserver, RunSummary, ShardedMonitor, Strategy, StreamDigest,
    DEFAULT_SHARD_LANES,
};
pub use netshed_predict::{Predictor, PredictorFactory, RobustMlrConfig, RobustMlrPredictor};
pub use netshed_queries::{QueryKind, QueryOutput, QuerySpec};
pub use netshed_trace::{
    shard_key, AnomalyEvent, Batch, BatchReplay, BatchView, FormatError, Interleave, Link,
    PacketSource, PacketSourceExt, Phase, Scenario, ScenarioAnomaly, ScenarioError, ScenarioSource,
    TraceConfig, TraceGenerator, TraceProfile, TraceReader, TraceWriter,
};

/// Everything a typical experiment needs, in one import.
pub mod prelude {
    pub use netshed_fairness::{Allocation, AllocationStrategy, QueryDemand};
    pub use netshed_monitor::{
        AccuracyTracker, AllocationGameAttacker, AllocationPolicy, BinRecord, ControlContext,
        ControlDecision, ControlPolicy, DecisionReason, DegradationGuard, DegradationGuardConfig,
        DigestObserver, EnforcementConfig, ExecStats, HysteresisReactivePolicy, Monitor,
        MonitorBuilder, MonitorConfig, NetshedError, NoSheddingPolicy, NullObserver, OraclePolicy,
        PredictivePolicy, PredictorKind, QueryBinRecord, QueryId, ReactivePolicy, RecordSink,
        ReferenceRunner, RunDigest, RunObserver, RunSummary, ShardedMonitor, Strategy,
        StreamDigest, DEFAULT_SHARD_LANES,
    };
    pub use netshed_predict::{Predictor, PredictorFactory, RobustMlrConfig, RobustMlrPredictor};
    pub use netshed_queries::{CustomBehavior, QueryKind, QueryOutput, QuerySpec};
    pub use netshed_trace::{
        shard_key, Anomaly, AnomalyEvent, AnomalyKind, Batch, BatchReplay, BatchView, FormatError,
        Interleave, Link, PacketSource, PacketSourceExt, Phase, Scenario, ScenarioAnomaly,
        ScenarioError, ScenarioSource, TraceConfig, TraceGenerator, TraceProfile, TraceReader,
        TraceWriter,
    };
}
