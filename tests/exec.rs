//! Execution-plane determinism tests: for any worker count, the monitor must
//! produce **bit-identical** per-bin records, decisions and interval outputs
//! — the contract that makes `with_workers` a pure wall-clock knob.
//!
//! The runs deliberately keep measurement noise *enabled*: the noise RNG is
//! the easiest place for a parallel dispatch to reorder draws, so the replay
//! must prove the pre-draw discipline holds, not sidestep it.

use netshed::fairness::MmfsPkt;
use netshed::prelude::*;

/// Payload-carrying traffic so packet-, flow- and custom-shedding queries all
/// do real work.
fn recorded_batches(batches: usize) -> Vec<Batch> {
    TraceGenerator::new(
        TraceConfig::default().with_seed(41).with_mean_packets_per_batch(300.0).with_payloads(true),
    )
    .batches(batches)
}

/// One query per shedding method, plus top-k whose 0.57 minimum rate forces
/// the disabled path under overload: packet sampling (counter,
/// pattern-search), flow sampling (flows), custom shedding (p2p-detector).
fn specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::TopK),
        QuerySpec::new(QueryKind::PatternSearch),
        QuerySpec::new(QueryKind::P2pDetector).with_custom(CustomBehavior::Honest),
    ]
}

/// Collects everything the monitor emits, for exact comparison.
#[derive(Default)]
struct FullTape {
    records: Vec<BinRecord>,
    intervals: Vec<Vec<(String, QueryOutput)>>,
    decisions: Vec<(u64, ControlDecision)>,
}

impl RunObserver for FullTape {
    fn on_bin(&mut self, record: &BinRecord) {
        self.records.push(record.clone());
    }

    fn on_interval(&mut self, outputs: &[(String, QueryOutput)]) {
        self.intervals.push(outputs.to_vec());
    }

    fn on_decision(&mut self, bin_index: u64, decision: &ControlDecision) {
        self.decisions.push((bin_index, decision.clone()));
    }
}

fn replay(
    batches: &[Batch],
    capacity: f64,
    strategy: Option<Strategy>,
    workers: usize,
) -> (FullTape, RunSummary) {
    // Noise stays on (the builder default) — determinism must survive it.
    let mut builder =
        Monitor::builder().capacity(capacity).seed(23).with_workers(workers).queries(specs());
    builder = match strategy {
        Some(strategy) => builder.strategy(strategy),
        None => builder.with_policy(OraclePolicy::new(MmfsPkt)),
    };
    let mut monitor = builder.build().expect("valid configuration");
    let mut tape = FullTape::default();
    let summary =
        monitor.run(&mut BatchReplay::new(batches.to_vec()), &mut tape).expect("run succeeds");
    (tape, summary)
}

/// The acceptance criterion of the execution plane: replaying the same trace
/// with 1, 2 and 4 workers yields bit-identical `BinRecord` streams,
/// control decisions and interval outputs for all seven built-in strategy
/// names plus the oracle policy (which adds the shadow-twin dispatch).
#[test]
fn worker_count_never_changes_the_output_stream() {
    let batches = recorded_batches(50);
    let demand = netshed::monitor::reference::measure_total_demand(&specs(), &batches[..20])
        .expect("valid query specs");
    let capacity = demand / 2.0;

    let configurations: Vec<(String, Option<Strategy>)> = [
        Strategy::NoShedding,
        Strategy::Reactive(AllocationPolicy::EqualRates),
        Strategy::Reactive(AllocationPolicy::MmfsCpu),
        Strategy::Reactive(AllocationPolicy::MmfsPkt),
        Strategy::Predictive(AllocationPolicy::EqualRates),
        Strategy::Predictive(AllocationPolicy::MmfsCpu),
        Strategy::Predictive(AllocationPolicy::MmfsPkt),
    ]
    .into_iter()
    .map(|strategy| (strategy.name(), Some(strategy)))
    .chain([("oracle_mmfs_pkt".to_string(), None)])
    .collect();

    for (name, strategy) in configurations {
        let (sequential, sequential_summary) = replay(&batches, capacity, strategy, 1);
        assert!(!sequential.records.is_empty(), "{name}: the replay must process bins");
        for workers in [2, 4] {
            let (parallel, parallel_summary) = replay(&batches, capacity, strategy, workers);
            assert_eq!(
                sequential.records, parallel.records,
                "{name}: BinRecord stream diverged at {workers} workers"
            );
            assert_eq!(
                sequential.decisions, parallel.decisions,
                "{name}: decision stream diverged at {workers} workers"
            );
            assert_eq!(
                sequential.intervals, parallel.intervals,
                "{name}: interval outputs diverged at {workers} workers"
            );
            assert_eq!(
                sequential_summary, parallel_summary,
                "{name}: run summary diverged at {workers} workers"
            );
        }
    }
}

/// The dispatch telemetry must account for the tasks the plane actually ran.
#[test]
fn exec_stats_track_the_dispatched_tail() {
    let batches = recorded_batches(20);
    let mut monitor = Monitor::builder()
        .capacity(1e12)
        .seed(5)
        .with_workers(2)
        .queries(specs())
        .build()
        .expect("valid configuration");
    monitor.run(&mut BatchReplay::new(batches), &mut NullObserver).expect("run succeeds");
    let stats = monitor.exec_stats();
    assert_eq!(monitor.workers(), 2);
    assert!(stats.bins > 0, "bins must be folded into the telemetry");
    // Per bin: ten extraction shards, five prediction tasks and five query
    // tasks (all five queries run at full rate).
    assert_eq!(stats.dispatched_tasks, stats.bins * 20);
    assert!(stats.task_ns > 0);
    assert!(stats.parallel_fraction() > 0.0 && stats.parallel_fraction() < 1.0);
    assert_eq!(stats.projected_speedup(1), Some(1.0));
    assert!(stats.projected_speedup(4).expect("simulated point") >= 1.0);
}

/// `with_workers` is validated like every other builder knob.
#[test]
fn worker_counts_outside_the_domain_are_rejected() {
    for workers in [0, netshed::monitor::MAX_WORKERS + 1] {
        let error = Monitor::builder().with_workers(workers).build().unwrap_err();
        assert!(
            matches!(error, NetshedError::InvalidConfig(_)),
            "workers = {workers} produced {error:?}"
        );
    }
    let monitor =
        Monitor::builder().with_workers(4).build().expect("in-domain worker count builds");
    assert_eq!(monitor.workers(), 4);
    assert_eq!(monitor.config().workers, 4);
}
