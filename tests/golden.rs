//! Golden-replay conformance: every built-in scenario, recorded to the
//! binary trace format and replayed through all seven strategies, must
//! produce exactly the output streams pinned in `corpus/GOLDEN.digests`.
//!
//! Three invariants are pinned per scenario:
//!
//! 1. **Generator + format stability** — the committed `.nstr` recording
//!    still decodes to exactly the batches the scenario generates today (a
//!    format change that round-trips in memory but breaks old files, or a
//!    silent generator change, fails here first).
//! 2. **Round-trip replay equivalence** (the acceptance criterion) —
//!    generate → write → read → run produces bit-identical `BinRecord`
//!    streams to running the generator's batches directly, at 1 and 4
//!    workers, for all seven strategies.
//! 3. **Golden digests** — the per-strategy record/decision/interval
//!    digests equal the committed manifest, with a readable report naming
//!    the drifted stream otherwise.
//!
//! The CI golden-corpus job runs this file under `NETSHED_THREADS=1` and
//! `=4`. Most runs below pin their worker counts explicitly (so the digests
//! cannot depend on the env knob); the ambient-config test at the bottom
//! deliberately leaves the worker count to the environment, which is what
//! makes the `=4` CI pass exercise the parallel plane against the manifest
//! for real.

use netshed::prelude::*;
use netshed_bench::corpus::{
    all_strategies, corpus_capacity, corpus_specs, diff_digests, digest_run, parse_manifest,
    GoldenEntry, MANIFEST_NAME, TRACE_EXTENSION,
};
use netshed_trace::scenario::builtins;
use netshed_trace::{decode_batches, decode_batches_shared, encode_batches, Bytes};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Collects the full output tape of one run for exact comparison.
#[derive(Default)]
struct FullTape {
    records: Vec<BinRecord>,
    decisions: Vec<(u64, ControlDecision)>,
    intervals: Vec<Vec<(String, QueryOutput)>>,
}

impl RunObserver for FullTape {
    fn on_bin(&mut self, record: &BinRecord) {
        self.records.push(record.clone());
    }

    fn on_decision(&mut self, bin_index: u64, decision: &ControlDecision) {
        self.decisions.push((bin_index, decision.clone()));
    }

    fn on_interval(&mut self, outputs: &[(String, QueryOutput)]) {
        self.intervals.push(outputs.to_vec());
    }
}

fn tape_run(batches: &[Batch], strategy: Strategy, capacity: f64, workers: usize) -> FullTape {
    let mut monitor = Monitor::builder()
        .capacity(capacity)
        .seed(netshed_bench::corpus::CORPUS_SEED)
        .strategy(strategy)
        .with_workers(workers)
        .queries(corpus_specs())
        .build()
        .expect("valid corpus configuration");
    let mut tape = FullTape::default();
    monitor.run(&mut BatchReplay::new(batches.to_vec()), &mut tape).expect("corpus run");
    tape
}

/// Invariant 1: committed recordings decode to today's generator output.
#[test]
fn committed_recordings_match_the_generators() {
    for scenario in builtins() {
        let path = corpus_dir().join(format!("{}.{TRACE_EXTENSION}", scenario.name()));
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{}: cannot read committed recording {} ({e}); regenerate the corpus with \
                 `cargo run -p netshed-bench --release --bin scenarios -- record`",
                scenario.name(),
                path.display()
            )
        });
        let recorded = decode_batches(&bytes).unwrap_or_else(|e| {
            panic!("{}: committed recording does not decode: {e}", scenario.name())
        });
        let generated = scenario.generate().expect("builtins are valid");
        assert!(
            recorded == generated,
            "{}: the generator no longer reproduces the committed recording — either the \
             traffic model or the trace format changed; if intentional, re-record the corpus",
            scenario.name()
        );
    }
}

/// Invariant 2 (the acceptance criterion): generate → write → read → run is
/// bit-identical to running the generated batches directly, at 1 and 4
/// workers, for all seven strategies.
#[test]
fn roundtrip_replay_is_bit_identical_for_every_strategy_and_worker_count() {
    for scenario in builtins() {
        let generated = scenario.generate().expect("builtins are valid");
        let encoded = encode_batches(&generated, scenario.bin_duration_us()).expect("encode");
        let replayed = decode_batches(&encoded).expect("decode");
        assert_eq!(generated, replayed, "{}: packet round-trip", scenario.name());
        // The zero-copy reader is a full peer of the copying one: its batches
        // (payloads borrowed from the container) must compare bit-identical.
        let container = Bytes::from(encoded);
        let borrowed = decode_batches_shared(&container).expect("shared decode");
        assert_eq!(generated, borrowed, "{}: borrowed-replay round-trip", scenario.name());

        let capacity = corpus_capacity(&generated);
        for (name, strategy) in all_strategies() {
            let direct = tape_run(&generated, strategy, capacity, 1);
            assert!(
                !direct.records.is_empty(),
                "{}/{name}: the corpus run must process bins",
                scenario.name()
            );
            for workers in [1usize, 4] {
                let roundtripped = tape_run(&replayed, strategy, capacity, workers);
                assert_eq!(
                    direct.records,
                    roundtripped.records,
                    "{}/{name}: BinRecord stream diverged after write→read at {workers} workers",
                    scenario.name()
                );
                assert_eq!(
                    direct.decisions,
                    roundtripped.decisions,
                    "{}/{name}: decision stream diverged after write→read at {workers} workers",
                    scenario.name()
                );
                assert_eq!(
                    direct.intervals,
                    roundtripped.intervals,
                    "{}/{name}: interval outputs diverged after write→read at {workers} workers",
                    scenario.name()
                );
            }
        }
    }
}

/// Invariant 3: the per-strategy digests equal the committed manifest.
#[test]
fn digests_match_the_committed_golden_manifest() {
    let manifest_path = corpus_dir().join(MANIFEST_NAME);
    let text = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", manifest_path.display()));
    let pinned = parse_manifest(&text).expect("committed manifest parses");
    assert_eq!(
        pinned.len(),
        builtins().len() * all_strategies().len(),
        "the manifest must pin every (scenario, strategy) pair"
    );

    let mut drift: Vec<String> = Vec::new();
    for scenario in builtins() {
        let batches = scenario.generate().expect("builtins are valid");
        let capacity = corpus_capacity(&batches);
        for (name, strategy) in all_strategies() {
            let entry: &GoldenEntry = pinned
                .iter()
                .find(|e| e.scenario == scenario.name() && e.strategy == name)
                .unwrap_or_else(|| {
                    panic!("{} / {name}: missing from the golden manifest", scenario.name())
                });
            let fresh = digest_run(&batches, strategy, capacity, 1).expect("corpus run");
            drift.extend(diff_digests(scenario.name(), &name, entry.digest, fresh));
        }
    }
    assert!(
        drift.is_empty(),
        "golden corpus drift — an output stream changed; if intentional, re-record with \
         `cargo run -p netshed-bench --release --bin scenarios -- record` and commit:\n  {}",
        drift.join("\n  ")
    );
}

/// The digests the manifest pins are worker-count invariant (spot-checked
/// exhaustively in the round-trip test above via full tapes; this pins the
/// digest path itself at 4 workers for every scenario).
#[test]
fn manifest_digests_are_worker_invariant() {
    for scenario in builtins() {
        let batches = scenario.generate().expect("builtins are valid");
        let capacity = corpus_capacity(&batches);
        let (name, strategy) = all_strategies().into_iter().last().expect("seven strategies");
        let sequential = digest_run(&batches, strategy, capacity, 1).expect("run");
        let parallel = digest_run(&batches, strategy, capacity, 4).expect("run");
        assert_eq!(
            sequential,
            parallel,
            "{} / {name}: digest changed with the worker count",
            scenario.name()
        );
    }
}

/// Monitors built *without* an explicit worker count inherit
/// `NETSHED_THREADS`; their digests must still match the manifest. This is
/// the test that makes the CI job's `NETSHED_THREADS=4` pass genuinely
/// different from the sequential one — every other run here pins its
/// workers explicitly.
#[test]
fn ambient_worker_config_matches_the_manifest() {
    let manifest_path = corpus_dir().join(MANIFEST_NAME);
    let text = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", manifest_path.display()));
    let pinned = parse_manifest(&text).expect("committed manifest parses");
    for scenario in builtins() {
        let batches = scenario.generate().expect("builtins are valid");
        let capacity = corpus_capacity(&batches);
        let (name, strategy) = all_strategies().into_iter().last().expect("seven strategies");
        let mut monitor = Monitor::builder()
            .capacity(capacity)
            .seed(netshed_bench::corpus::CORPUS_SEED)
            .strategy(strategy)
            // No .with_workers(): the count comes from NETSHED_THREADS.
            .queries(corpus_specs())
            .build()
            .expect("valid corpus configuration");
        let mut digest = DigestObserver::new();
        monitor.run(&mut BatchReplay::new(batches), &mut digest).expect("corpus run");
        let entry = pinned
            .iter()
            .find(|e| e.scenario == scenario.name() && e.strategy == name)
            .unwrap_or_else(|| panic!("{} / {name}: missing from manifest", scenario.name()));
        let drift = diff_digests(scenario.name(), &name, entry.digest, digest.digest());
        assert!(
            drift.is_empty(),
            "ambient-worker run drifted from the manifest (workers from NETSHED_THREADS={:?}):\n  {}",
            std::env::var("NETSHED_THREADS").ok(),
            drift.join("\n  ")
        );
    }
}

/// The shard-plane acceptance criterion: a flow-sharded fleet produces
/// bit-identical digests at every shards×workers combination in
/// {1,2,4}×{1,4}, for all seven strategies, over the whole corpus. The
/// (shards=1, workers=1) run is the reference — the fleet's output is its
/// own contract (it legitimately differs from the solo monitor's, because
/// the lane partition owns predictor and policy state).
#[test]
fn sharded_digests_are_invariant_across_the_shards_workers_matrix() {
    for scenario in builtins() {
        let batches = scenario.generate().expect("builtins are valid");
        let capacity = corpus_capacity(&batches);
        for (name, strategy) in all_strategies() {
            let reference =
                netshed_bench::corpus::sharded_digest_run(&batches, strategy, capacity, 1, 1)
                    .expect("corpus run");
            assert!(
                reference.bins > 0,
                "{}/{name}: the sharded corpus run must process bins",
                scenario.name()
            );
            for (shards, workers) in [(1, 4), (2, 1), (2, 4), (4, 1), (4, 4)] {
                let digest = netshed_bench::corpus::sharded_digest_run(
                    &batches, strategy, capacity, shards, workers,
                )
                .expect("corpus run");
                assert_eq!(
                    reference,
                    digest,
                    "{}/{name}: sharded digest changed at {shards} shards x {workers} workers",
                    scenario.name()
                );
            }
        }
    }
}

/// Fleets built *without* an explicit shard-thread count inherit
/// `NETSHED_SHARDS`; their digests must equal the pinned-count reference.
/// This is what makes the CI golden-corpus job's `NETSHED_SHARDS=2` / `=4`
/// passes genuinely different from the default one — the matrix test above
/// pins its shard counts explicitly.
#[test]
fn ambient_shard_config_matches_the_pinned_reference() {
    let scenario = &builtins()[1]; // ddos-spike: the shard-borrowing workload
    let batches = scenario.generate().expect("builtins are valid");
    let capacity = corpus_capacity(&batches);
    let (name, strategy) = all_strategies().into_iter().last().expect("seven strategies");
    let reference = netshed_bench::corpus::sharded_digest_run(&batches, strategy, capacity, 1, 1)
        .expect("corpus run");
    let mut fleet = Monitor::builder()
        .capacity(capacity)
        .seed(netshed_bench::corpus::CORPUS_SEED)
        .strategy(strategy)
        // No .with_shards(): the count comes from NETSHED_SHARDS.
        .queries(corpus_specs())
        .build_sharded()
        .expect("valid corpus configuration");
    let mut digest = DigestObserver::new();
    fleet.run(&mut BatchReplay::new(batches), &mut digest).expect("corpus run");
    assert_eq!(
        reference,
        digest.digest(),
        "{}/{name}: ambient-shard run drifted (shards from NETSHED_SHARDS={:?})",
        scenario.name(),
        std::env::var("NETSHED_SHARDS").ok()
    );
}
