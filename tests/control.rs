//! Control-plane equivalence and extension tests: the `Strategy` enum path
//! and the `ControlPolicy` trait path must be bit-identical for every
//! built-in, and the new policies must actually control load.

use netshed::fairness::{EqualRates, MmfsCpu, MmfsPkt};
use netshed::prelude::*;

fn recorded_batches(batches: usize) -> Vec<Batch> {
    TraceGenerator::new(
        TraceConfig::default().with_seed(17).with_mean_packets_per_batch(300.0).with_payloads(true),
    )
    .batches(batches)
}

fn specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::TopK),
        QuerySpec::new(QueryKind::PatternSearch),
    ]
}

fn run_with(builder: MonitorBuilder, batches: &[Batch]) -> RunSummary {
    let mut monitor = builder.queries(specs()).build().expect("valid configuration");
    monitor.run(&mut BatchReplay::new(batches.to_vec()), &mut NullObserver).expect("run")
}

/// The acceptance criterion of the control-plane redesign: for every
/// built-in `Strategy`, constructing the monitor through the enum and
/// through the equivalent explicitly-built policy produces a bit-identical
/// `RunSummary` for the same config, seed and batches.
#[test]
fn enum_and_trait_paths_are_bit_identical_for_all_seven_strategies() {
    let batches = recorded_batches(60);
    let demand = netshed::monitor::reference::measure_total_demand(&specs(), &batches[..20])
        .expect("valid query specs");
    let capacity = demand / 2.0;

    let policy_for = |strategy: Strategy| -> Box<dyn ControlPolicy> {
        match strategy {
            Strategy::NoShedding => Box::new(NoSheddingPolicy),
            Strategy::Reactive(AllocationPolicy::EqualRates) => {
                Box::new(ReactivePolicy::new(EqualRates))
            }
            Strategy::Reactive(AllocationPolicy::MmfsCpu) => Box::new(ReactivePolicy::new(MmfsCpu)),
            Strategy::Reactive(AllocationPolicy::MmfsPkt) => Box::new(ReactivePolicy::new(MmfsPkt)),
            Strategy::Predictive(AllocationPolicy::EqualRates) => {
                Box::new(PredictivePolicy::new(EqualRates))
            }
            Strategy::Predictive(AllocationPolicy::MmfsCpu) => {
                Box::new(PredictivePolicy::new(MmfsCpu))
            }
            Strategy::Predictive(AllocationPolicy::MmfsPkt) => {
                Box::new(PredictivePolicy::new(MmfsPkt))
            }
        }
    };

    for strategy in [
        Strategy::NoShedding,
        Strategy::Reactive(AllocationPolicy::EqualRates),
        Strategy::Reactive(AllocationPolicy::MmfsCpu),
        Strategy::Reactive(AllocationPolicy::MmfsPkt),
        Strategy::Predictive(AllocationPolicy::EqualRates),
        Strategy::Predictive(AllocationPolicy::MmfsCpu),
        Strategy::Predictive(AllocationPolicy::MmfsPkt),
    ] {
        let base = || Monitor::builder().capacity(capacity).seed(11).no_noise();
        let via_enum = run_with(base().strategy(strategy), &batches);
        let via_trait = run_with(base().with_policy(policy_for(strategy)), &batches);
        assert_eq!(
            via_enum,
            via_trait,
            "strategy '{}' must be bit-identical between the enum and trait paths",
            strategy.name()
        );
    }
}

/// A user-defined predictor plugs in through the same registration pattern.
#[test]
fn custom_predictor_factory_from_outside_the_crates_runs() {
    use netshed::features::FeatureVector;

    /// Predicts a constant — useless, but unmistakably ours.
    struct Flat(f64);

    impl Predictor for Flat {
        fn predict(&mut self, _features: &FeatureVector) -> f64 {
            self.0
        }

        fn observe(&mut self, _features: &FeatureVector, _actual_cycles: f64) {}

        fn name(&self) -> &'static str {
            "flat"
        }
    }

    let batches = recorded_batches(20);
    let mut monitor = Monitor::builder()
        .capacity(1e12)
        .no_noise()
        .with_predictor(|| Box::new(Flat(1234.5)) as Box<dyn Predictor>)
        .query(QuerySpec::new(QueryKind::Counter))
        .build()
        .expect("valid configuration");
    for batch in &batches {
        let record = monitor.process_batch(batch).expect("batch");
        assert_eq!(record.queries[0].predicted_cycles, 1234.5);
    }
}

/// The oracle policy cannot be surprised: it sheds from the very first bin
/// of an overloaded run, while a history-driven predictor is blind until it
/// has observations (the cold-start gap every predictor pays, which is what
/// makes the oracle the upper bound of the family).
#[test]
fn oracle_policy_sheds_from_the_first_bin_where_predictors_are_blind() {
    let batches = recorded_batches(60);
    let demand = netshed::monitor::reference::measure_total_demand(&specs(), &batches[..20])
        .expect("valid query specs");
    let capacity = demand / 2.0;

    struct Track {
        reasons: Vec<DecisionReason>,
        cycles: Vec<f64>,
    }
    impl RunObserver for Track {
        fn on_decision(&mut self, _bin_index: u64, decision: &ControlDecision) {
            self.reasons.push(decision.reason);
        }

        fn on_bin(&mut self, record: &BinRecord) {
            self.cycles.push(record.total_cycles());
        }
    }

    let run = |oracle: bool| -> (Track, RunSummary) {
        let mut builder = Monitor::builder()
            .capacity(capacity)
            .seed(29)
            .no_noise()
            // EWMA: purely history-driven, so bin 0 predicts zero cycles.
            .predictor(PredictorKind::Ewma)
            .queries(specs());
        builder = if oracle {
            builder.with_policy(OraclePolicy::new(MmfsPkt))
        } else {
            builder.strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
        };
        let mut monitor = builder.build().expect("valid configuration");
        let mut track = Track { reasons: Vec::new(), cycles: Vec::new() };
        let summary = monitor.run(&mut BatchReplay::new(batches.clone()), &mut track).expect("run");
        (track, summary)
    };

    let (predictive, _) = run(false);
    let (oracle, oracle_summary) = run(true);

    assert_eq!(
        predictive.reasons[0],
        DecisionReason::FitsInBudget,
        "a cold history-driven predictor sees no demand on bin 0 and does not shed"
    );
    assert_eq!(
        oracle.reasons[0],
        DecisionReason::Overload,
        "the oracle sees the true bin-0 demand and sheds immediately"
    );
    assert!(
        oracle.cycles[0] < predictive.cycles[0],
        "shedding bin 0 must cost fewer cycles than running it blind ({:.0} vs {:.0})",
        oracle.cycles[0],
        predictive.cycles[0]
    );
    assert_eq!(oracle_summary.total_uncontrolled_drops, 0, "the oracle must not drop uncontrolled");
}
