//! Observer composition: sinks must round-trip the records they stream, and
//! tuple composition must deliver every event, in document order, to both
//! members.

use netshed::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn run_with<O: RunObserver>(observer: &mut O, batches: usize) -> RunSummary {
    let mut monitor = Monitor::builder()
        .capacity(1e12)
        .no_noise()
        .seed(2)
        .queries(vec![QuerySpec::new(QueryKind::Counter), QuerySpec::new(QueryKind::Flows)])
        .build()
        .expect("build");
    let mut source =
        TraceGenerator::new(TraceConfig::default().with_seed(6).with_mean_packets_per_batch(70.0))
            .take_batches(batches);
    monitor.run(&mut source, observer).expect("run")
}

/// Captures the records the sink saw, for field-level comparison.
#[derive(Default)]
struct Records(Vec<BinRecord>);

impl RunObserver for Records {
    fn on_bin(&mut self, record: &BinRecord) {
        self.0.push(record.clone());
    }
}

#[test]
fn csv_rows_round_trip_to_the_emitted_records() {
    let mut pair = (Records::default(), RecordSink::csv(Vec::new()));
    run_with(&mut pair, 12);
    let (records, sink) = pair;
    assert!(sink.error().is_none());
    let written = String::from_utf8(sink.into_inner()).expect("utf8");
    let mut lines = written.lines();
    let header: Vec<&str> = lines.next().expect("header row").split(',').collect();
    assert_eq!(header[0], "bin_index");
    assert_eq!(header.len(), 10, "one column per documented field");

    let rows: Vec<Vec<String>> =
        lines.map(|l| l.split(',').map(str::to_string).collect()).collect();
    assert_eq!(rows.len(), records.0.len(), "one CSV row per emitted record");
    for (row, record) in rows.iter().zip(&records.0) {
        // Parse back and compare against the record, using the sink's own
        // precision so the check is exact, not epsilon-sloppy.
        assert_eq!(row[0], record.bin_index.to_string());
        assert_eq!(row[1], record.incoming_packets.to_string());
        assert_eq!(row[2], record.uncontrolled_drops.to_string());
        assert_eq!(row[3], record.unsampled_packets.to_string());
        assert_eq!(row[4], format!("{:.1}", record.available_cycles));
        assert_eq!(row[5], format!("{:.1}", record.predicted_cycles));
        assert_eq!(row[6], format!("{:.1}", record.query_cycles));
        assert_eq!(row[7], format!("{:.1}", record.total_cycles()));
        assert_eq!(row[8], format!("{:.4}", record.buffer_occupation));
        assert_eq!(row[9], format!("{:.4}", record.mean_sampling_rate()));
        // And the parsed numbers identify the record semantically.
        let parsed_rate: f64 = row[9].parse().expect("numeric rate");
        assert!((parsed_rate - record.mean_sampling_rate()).abs() < 5e-5);
    }
}

/// Minimal NDJSON field extractor for the flat objects the sink emits.
fn json_field(line: &str, key: &str) -> String {
    let marker = format!("\"{key}\":");
    let start =
        line.find(&marker).unwrap_or_else(|| panic!("{key} missing in {line}")) + marker.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).expect("terminated value");
    rest[..end].to_string()
}

#[test]
fn ndjson_objects_round_trip_to_the_emitted_records() {
    let mut pair = (Records::default(), RecordSink::json(Vec::new()));
    run_with(&mut pair, 12);
    let (records, sink) = pair;
    assert!(sink.error().is_none());
    let written = String::from_utf8(sink.into_inner()).expect("utf8");
    let lines: Vec<&str> = written.lines().collect();
    assert_eq!(lines.len(), records.0.len(), "one object per emitted record");
    for (line, record) in lines.iter().zip(&records.0) {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(json_field(line, "bin_index"), record.bin_index.to_string());
        assert_eq!(json_field(line, "incoming_packets"), record.incoming_packets.to_string());
        assert_eq!(json_field(line, "available_cycles"), format!("{:.1}", record.available_cycles));
        assert_eq!(json_field(line, "query_cycles"), format!("{:.1}", record.query_cycles));
        assert_eq!(json_field(line, "total_cycles"), format!("{:.1}", record.total_cycles()));
        assert_eq!(
            json_field(line, "buffer_occupation"),
            format!("{:.4}", record.buffer_occupation)
        );
        assert_eq!(
            json_field(line, "mean_sampling_rate"),
            format!("{:.4}", record.mean_sampling_rate())
        );
    }
}

/// An observer that appends `(tag, event)` markers to a shared log.
struct Tagged {
    tag: &'static str,
    log: Rc<RefCell<Vec<(&'static str, String)>>>,
}

impl RunObserver for Tagged {
    fn on_batch(&mut self, batch: &Batch) {
        self.log.borrow_mut().push((self.tag, format!("batch:{}", batch.bin_index)));
    }

    fn on_decision(&mut self, bin_index: u64, _decision: &ControlDecision) {
        self.log.borrow_mut().push((self.tag, format!("decision:{bin_index}")));
    }

    fn on_bin(&mut self, record: &BinRecord) {
        self.log.borrow_mut().push((self.tag, format!("bin:{}", record.bin_index)));
    }

    fn on_interval(&mut self, _outputs: &[(String, QueryOutput)]) {
        self.log.borrow_mut().push((self.tag, "interval".to_string()));
    }

    fn on_end(&mut self, _summary: &RunSummary) {
        self.log.borrow_mut().push((self.tag, "end".to_string()));
    }
}

#[test]
fn tuple_observers_see_every_event_in_document_order() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut pair = (
        Tagged { tag: "first", log: Rc::clone(&log) },
        Tagged { tag: "second", log: Rc::clone(&log) },
    );
    // 15 batches closes one mid-run interval (10 bins per interval) and
    // flushes a second at the end of the run.
    let summary = run_with(&mut pair, 15);
    assert_eq!(summary.bins, 15);
    let log = log.borrow();

    // Both members saw the identical event sequence, pairwise interleaved
    // with the first tuple member always first.
    let events = |tag: &str| -> Vec<String> {
        log.iter().filter(|(t, _)| *t == tag).map(|(_, e)| e.clone()).collect()
    };
    let first = events("first");
    let second = events("second");
    assert_eq!(first, second, "both tuple members must see the same events");
    for pair in log.chunks(2) {
        assert_eq!(pair[0].0, "first", "tuple order is member order");
        assert_eq!(pair[1].0, "second");
        assert_eq!(pair[0].1, pair[1].1);
    }

    // The per-batch order is the documented one: on_batch → (on_interval on
    // closing bins) → on_decision → on_bin, then a final interval flush and
    // on_end.
    assert_eq!(first[0], "batch:0");
    assert_eq!(first[1], "decision:0");
    assert_eq!(first[2], "bin:0");
    // Bin 10 belongs to the next measurement interval, so processing it
    // closes interval 0: its outputs are delivered between that batch's
    // on_batch and on_decision.
    let bin10 = first.iter().position(|e| e == "batch:10").expect("bin 10 seen");
    assert_eq!(first[bin10 + 1], "interval");
    assert_eq!(first[bin10 + 2], "decision:10");
    assert_eq!(first[bin10 + 3], "bin:10");
    assert_eq!(first[first.len() - 2], "interval", "the final flush precedes on_end");
    assert_eq!(first[first.len() - 1], "end");
    assert_eq!(first.iter().filter(|e| *e == "interval").count(), 2);
}
