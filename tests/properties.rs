//! Property-based tests of the core data structures and invariants.

use netshed::fairness::{eq_srates, mmfs_cpu, mmfs_pkt, Allocation, QueryDemand};
use netshed::linalg::{ols_solve, Matrix};
use netshed::monitor::PredictorKind;
use netshed::monitor::{flow_sample, packet_sample};
use netshed::sketch::{mix64, BloomFilter, H3Hasher, MultiResolutionBitmap};
use netshed::trace::{Batch, BatchBuilder, FiveTuple, Packet, TraceConfig, TraceGenerator};
// The historical clone-based samplers, the reference the zero-copy view path
// must match bit for bit.
use netshed_bench::baseline::{clone_flow_sample, clone_packet_sample};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn shed_test_batch(seed: u64) -> Batch {
    TraceGenerator::new(TraceConfig::default().with_seed(seed).with_mean_packets_per_batch(300.0))
        .next_batch()
}

proptest! {
    /// The multi-resolution bitmap estimate stays within a reasonable
    /// relative error across two orders of magnitude of cardinality.
    #[test]
    fn multiresolution_bitmap_estimates_within_bounds(n in 200usize..20_000, salt in 0u64..1000) {
        let mut bitmap = MultiResolutionBitmap::for_cardinality(50_000);
        for i in 0..n {
            bitmap.insert_hash(mix64(i as u64 ^ (salt << 32)));
        }
        let estimate = bitmap.estimate();
        let error = (estimate - n as f64).abs() / n as f64;
        prop_assert!(error < 0.15, "n={n} estimate={estimate} error={error}");
    }

    /// Bloom filters never produce false negatives.
    #[test]
    fn bloom_filter_has_no_false_negatives(keys in proptest::collection::hash_set(0u32..1_000_000, 1..500)) {
        let mut bloom = BloomFilter::with_rate(keys.len().max(8), 0.01);
        for key in &keys {
            bloom.insert(&key.to_be_bytes());
        }
        for key in &keys {
            prop_assert!(bloom.contains(&key.to_be_bytes()));
        }
    }

    /// Every fairness strategy respects the capacity constraint and the
    /// minimum sampling rate of every enabled query, and never emits a rate
    /// outside [0, 1].
    #[test]
    fn fair_allocations_respect_capacity_and_minimums(
        demands in proptest::collection::vec((1.0f64..1e6, 0.0f64..1.0), 1..12),
        capacity_factor in 0.05f64..1.5,
    ) {
        let demands: Vec<QueryDemand> =
            demands.into_iter().map(|(cycles, min)| QueryDemand::new(cycles, min)).collect();
        let total: f64 = demands.iter().map(|d| d.predicted_cycles).sum();
        let capacity = total * capacity_factor;
        for strategy in [mmfs_cpu, mmfs_pkt, eq_srates] {
            let allocations = strategy(&demands, capacity);
            prop_assert_eq!(allocations.len(), demands.len());
            let used: f64 = demands
                .iter()
                .zip(&allocations)
                .map(|(d, a)| d.predicted_cycles * a.rate())
                .sum();
            prop_assert!(used <= capacity * 1.0001 + 1e-6, "used {} > capacity {}", used, capacity);
            for (demand, allocation) in demands.iter().zip(&allocations) {
                match allocation {
                    Allocation::Disabled => {}
                    Allocation::Rate(rate) => {
                        prop_assert!((0.0..=1.0).contains(rate));
                        prop_assert!(*rate >= demand.min_rate - 1e-9);
                    }
                }
            }
        }
    }

    /// With ample capacity no strategy sheds anything.
    #[test]
    fn ample_capacity_never_sheds(
        demands in proptest::collection::vec((1.0f64..1e5, 0.0f64..1.0), 1..10),
    ) {
        let demands: Vec<QueryDemand> =
            demands.into_iter().map(|(cycles, min)| QueryDemand::new(cycles, min)).collect();
        let total: f64 = demands.iter().map(|d| d.predicted_cycles).sum();
        for strategy in [mmfs_cpu, mmfs_pkt, eq_srates] {
            let allocations = strategy(&demands, total * 2.0);
            for allocation in &allocations {
                prop_assert!((allocation.rate() - 1.0).abs() < 1e-9, "{:?}", allocation);
            }
        }
    }

    /// The batch builder conserves packets: every pushed packet ends up in
    /// exactly one emitted batch, and batches are emitted in bin order. The
    /// caller-provided output buffer is reused across all pushes.
    #[test]
    fn batch_builder_conserves_packets(timestamps in proptest::collection::vec(0u64..5_000, 1..300)) {
        let mut sorted = timestamps.clone();
        sorted.sort_unstable();
        let mut builder = BatchBuilder::new(100);
        let mut batches = Vec::new();
        for ts in &sorted {
            let packet = Packet::header_only(*ts, FiveTuple::new(1, 2, 3, 4, 6), 100, 0);
            let before = batches.len();
            let closed = builder.push_into(packet, &mut batches).expect("bins within gap cap");
            prop_assert_eq!(batches.len(), before + closed);
        }
        batches.push(builder.finish());
        let total: usize = batches.iter().map(netshed::Batch::len).sum();
        prop_assert_eq!(total, sorted.len());
        for window in batches.windows(2) {
            prop_assert_eq!(window[1].bin_index, window[0].bin_index + 1);
        }
        for batch in &batches {
            for packet in batch.packets.iter() {
                prop_assert!(packet.ts() >= batch.start_ts && packet.ts() < batch.end_ts());
            }
        }
    }

    /// Zero-copy packet sampling selects exactly the packets the historical
    /// clone-based path selected, for the same RNG seed, across the shedding
    /// rates the monitor actually uses (0, a fractional rate, 1).
    #[test]
    fn view_packet_sampling_matches_the_clone_path(
        trace_seed in 0u64..200,
        rng_seed in 0u64..200,
        rate_index in 0usize..3,
    ) {
        let rate = [0.0, 0.37, 1.0][rate_index];
        let batch = shed_test_batch(trace_seed);

        let mut view_rng = StdRng::seed_from_u64(rng_seed);
        let (view, view_dropped) = packet_sample(&batch.view(), rate, &mut view_rng);
        let mut clone_rng = StdRng::seed_from_u64(rng_seed);
        let (cloned, clone_dropped) = clone_packet_sample(&batch, rate, &mut clone_rng);

        prop_assert_eq!(view_dropped, clone_dropped);
        let from_view: Vec<Packet> = view.packets().map(|p| p.to_packet()).collect();
        let from_clone: Vec<Packet> = cloned.packets.iter().map(|p| p.to_packet()).collect();
        prop_assert_eq!(from_view, from_clone);
        // Both RNGs must have consumed the same number of draws.
        prop_assert_eq!(view_rng.gen::<u64>(), clone_rng.gen::<u64>());
        // And the view must actually be zero-copy.
        prop_assert!(std::sync::Arc::ptr_eq(view.store(), &batch.packets));
    }

    /// Zero-copy flow sampling selects exactly the flows the clone-based
    /// path selected for the same H3 hash function, so query outputs are
    /// unchanged by the refactor.
    #[test]
    fn view_flow_sampling_matches_the_clone_path(
        trace_seed in 0u64..200,
        hash_seed in 0u64..200,
        rate_index in 0usize..3,
    ) {
        let rate = [0.0, 0.37, 1.0][rate_index];
        let batch = shed_test_batch(trace_seed);
        let hasher = H3Hasher::new(13, hash_seed);

        let (view, view_dropped) = flow_sample(&batch.view(), rate, &hasher);
        let (cloned, clone_dropped) = clone_flow_sample(&batch, rate, &hasher);

        prop_assert_eq!(view_dropped, clone_dropped);
        let from_view: Vec<Packet> = view.packets().map(|p| p.to_packet()).collect();
        let from_clone: Vec<Packet> = cloned.packets.iter().map(|p| p.to_packet()).collect();
        prop_assert_eq!(from_view, from_clone);
        prop_assert!(std::sync::Arc::ptr_eq(view.store(), &batch.packets));
    }

    /// H3 flow sampling is a pure function of (hash function, flow key):
    /// the same flow receives the same keep/drop decision in every batch it
    /// appears in, no matter how the surrounding packets differ.
    #[test]
    fn flow_sampling_decides_per_flow_key_across_batches(
        flow_ids in proptest::collection::hash_set(0u32..5_000, 2..40),
        hash_seed in 0u64..500,
        rate in 0.05f64..0.95,
    ) {
        let flows: Vec<FiveTuple> =
            flow_ids.iter().map(|f| FiveTuple::new(*f, 9_000 + f, 1_000, 80, 6)).collect();
        // Batch A: two packets per flow, in flow order. Batch B: one packet
        // per flow in reverse order, interleaved with unrelated traffic.
        let mut a_packets = Vec::new();
        for (index, tuple) in flows.iter().enumerate() {
            a_packets.push(Packet::header_only(index as u64 * 2, *tuple, 100, 0));
            a_packets.push(Packet::header_only(index as u64 * 2 + 1, *tuple, 200, 0));
        }
        let mut b_packets = Vec::new();
        for (index, tuple) in flows.iter().rev().enumerate() {
            b_packets.push(Packet::header_only(index as u64 * 3, *tuple, 300, 0));
            let noise = FiveTuple::new(1_000_000 + index as u32, 7, 53, 53, 17);
            b_packets.push(Packet::header_only(index as u64 * 3 + 1, noise, 80, 0));
        }
        let batch_a = Batch::new(0, 0, 100_000, a_packets);
        let batch_b = Batch::new(5, 500_000, 100_000, b_packets);

        let hasher = H3Hasher::new(13, hash_seed);
        let (sampled_a, _) = flow_sample(&batch_a.view(), rate, &hasher);
        let (sampled_b, _) = flow_sample(&batch_b.view(), rate, &hasher);
        let kept_a: std::collections::HashSet<FiveTuple> =
            sampled_a.packets().map(|p| *p.tuple()).collect();
        let kept_b: std::collections::HashSet<FiveTuple> =
            sampled_b.packets().map(|p| *p.tuple()).collect();
        for tuple in &flows {
            prop_assert_eq!(
                kept_a.contains(tuple),
                kept_b.contains(tuple),
                "flow {:?} changed fate between batches",
                tuple
            );
        }
        // Whole flows are kept or dropped: batch A holds two packets per
        // kept flow, never one.
        prop_assert_eq!(sampled_a.len(), kept_a.len() * 2);
    }

    /// More budget can only widen the kept set: at a higher sampling rate
    /// the kept flows are a superset of the kept flows at any lower rate
    /// (the monotonicity that makes per-bin rate changes graceful).
    #[test]
    fn flow_sampling_rate_is_monotone(
        flow_ids in proptest::collection::hash_set(0u32..10_000, 5..60),
        hash_seed in 0u64..500,
        rate_a in 0.0f64..1.0,
        rate_b in 0.0f64..1.0,
    ) {
        let (low, high) = if rate_a <= rate_b { (rate_a, rate_b) } else { (rate_b, rate_a) };
        let packets: Vec<Packet> = flow_ids
            .iter()
            .enumerate()
            .map(|(index, f)| {
                Packet::header_only(index as u64, FiveTuple::new(*f, 2, 3, 443, 6), 100, 0)
            })
            .collect();
        let batch = Batch::new(0, 0, 100_000, packets);
        let hasher = H3Hasher::new(13, hash_seed);
        let (kept_low, _) = flow_sample(&batch.view(), low, &hasher);
        let (kept_high, _) = flow_sample(&batch.view(), high, &hasher);
        let low_set: std::collections::HashSet<FiveTuple> =
            kept_low.packets().map(|p| *p.tuple()).collect();
        let high_set: std::collections::HashSet<FiveTuple> =
            kept_high.packets().map(|p| *p.tuple()).collect();
        prop_assert!(
            low_set.is_subset(&high_set),
            "rate {} kept flows outside rate {}'s set",
            low,
            high
        );
    }

    /// Layout equivalence: the struct-of-arrays packet store is
    /// observationally identical to packet-at-a-time construction. For an
    /// arbitrary packet mix, every column round-trips back to the source
    /// packet, the eager flow-key column matches per-packet serialisation,
    /// the eager stats match a scalar fold over the packets, the cached
    /// aggregate-hash rows match the padded-key `hash_bytes` reference, and
    /// the fused extractor's output over the store matches the historical
    /// ten-pass extractor walking packet structs.
    #[test]
    fn soa_store_is_equivalent_to_packetwise_construction(
        rows in proptest::collection::vec(
            ((0u64..100_000, 1u32..0xffff, 1u32..0xffff),
             (0u16..1024, 0u16..1024, 0usize..3, 20u32..1500),
             (0u8..32, 0u8..2, 1u8..32)),
            1..120,
        ),
        hash_seed in 0u64..500,
    ) {
        use netshed::trace::{aggregate_hash_seed, Aggregate, Bytes};
        use netshed::sketch::hash_bytes;

        let mut packets: Vec<Packet> = rows
            .iter()
            .map(|((ts, src_ip, dst_ip), (src_port, dst_port, proto, ip_len), rest)| {
                let (flags, has_payload, payload_len) = *rest;
                let tuple =
                    FiveTuple::new(*src_ip, *dst_ip, *src_port, *dst_port, [6, 17, 1][*proto]);
                if has_payload == 1 {
                    let bytes: Vec<u8> = (0..payload_len)
                        .map(|index| (*ts as u8).wrapping_add(index))
                        .collect();
                    Packet::with_payload(*ts, tuple, *ip_len, flags, Bytes::from(bytes))
                } else {
                    Packet::header_only(*ts, tuple, *ip_len, flags)
                }
            })
            .collect();
        packets.sort_by_key(|p| p.ts);
        let batch = Batch::new(0, 0, 100_000, packets.clone());

        // Column round-trip and the eager flow-key column.
        prop_assert_eq!(batch.len(), packets.len());
        for (packet, stored) in packets.iter().zip(batch.packets.iter()) {
            prop_assert_eq!(packet, &stored.to_packet());
            prop_assert_eq!(&packet.tuple.as_key(), stored.flow_key());
        }

        // Eager stats vs a scalar fold.
        let stats = batch.packets.stats();
        prop_assert_eq!(stats.packets, packets.len() as u64);
        prop_assert_eq!(stats.bytes, packets.iter().map(|p| u64::from(p.ip_len)).sum::<u64>());
        prop_assert_eq!(
            stats.payload_bytes,
            packets.iter().map(|p| p.payload_len() as u64).sum::<u64>()
        );
        prop_assert_eq!(stats.syn_packets, packets.iter().filter(|p| p.is_syn()).count() as u64);
        prop_assert_eq!(stats.tcp_packets, packets.iter().filter(|p| p.is_proto(6)).count() as u64);
        prop_assert_eq!(stats.udp_packets, packets.iter().filter(|p| p.is_proto(17)).count() as u64);

        // Cached hash rows vs the padded-key reference (an independent code
        // path: `Aggregate::key` + `hash_bytes` instead of the incremental
        // per-field hasher the store uses).
        let rows = batch.packets.aggregate_hashes(hash_seed).rows().expect("fresh cache");
        for (packet, row) in packets.iter().zip(rows) {
            for (index, aggregate) in Aggregate::ALL.iter().enumerate() {
                let expected = hash_bytes(
                    &aggregate.key(&packet.tuple),
                    aggregate_hash_seed(hash_seed, index),
                );
                prop_assert_eq!(row.get(*aggregate), expected);
            }
        }

        // Fused extraction over the store vs the ten-pass packet walk.
        let mut fused = netshed::features::FeatureExtractor::with_defaults();
        let mut tenpass = netshed_bench::baseline::TenPassExtractor::with_defaults();
        let (fused_vector, fused_ops) = fused.extract(&batch);
        let (tenpass_vector, tenpass_ops) = tenpass.extract(&batch);
        prop_assert_eq!(fused_ops, tenpass_ops);
        for id in netshed::features::FeatureId::all() {
            prop_assert_eq!(
                fused_vector.get(id),
                tenpass_vector.get(id),
                "feature {} diverged",
                id.name()
            );
        }
    }

    /// OLS through the SVD pseudo-inverse recovers exact linear models.
    #[test]
    fn ols_recovers_linear_models(
        a in -50.0f64..50.0,
        b in -50.0f64..50.0,
        xs in proptest::collection::vec(-100.0f64..100.0, 10..60),
    ) {
        // Require enough spread in x for the system to be well conditioned.
        let spread = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1.0);
        let rows: Vec<Vec<f64>> = xs.iter().map(|x| vec![1.0, *x]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let fit = ols_solve(&Matrix::from_rows(&rows), &ys, 1e-12);
        prop_assert!((fit.coefficients[0] - a).abs() < 1e-6 * (1.0 + a.abs()));
        prop_assert!((fit.coefficients[1] - b).abs() < 1e-6 * (1.0 + b.abs()));
    }
}

/// The worker-count half of the flow-sampling contract: the flows query's
/// per-bin delivered-packet counts (the direct trace of its keep/drop
/// decisions) are identical at 1, 2 and 4 workers, under load shedding.
#[test]
fn flow_sampling_decisions_survive_any_worker_count() {
    use netshed::prelude::*;

    let batches = TraceGenerator::new(
        TraceConfig::default().with_seed(31).with_mean_packets_per_batch(150.0),
    )
    .batches(20);
    let specs = vec![QuerySpec::new(QueryKind::Flows), QuerySpec::new(QueryKind::Counter)];
    let demand = netshed::monitor::reference::measure_total_demand(&specs, &batches[..10])
        .expect("valid query specs");

    let delivered = |workers: usize| -> Vec<(u64, u64, bool)> {
        let mut monitor = Monitor::builder()
            .capacity(demand / 2.0)
            .seed(13)
            .with_workers(workers)
            .queries(specs.clone())
            .build()
            .expect("valid configuration");
        let mut rows = Vec::new();
        struct Tape<'a>(&'a mut Vec<(u64, u64, bool)>);
        impl RunObserver for Tape<'_> {
            fn on_bin(&mut self, record: &BinRecord) {
                let flows = &record.queries[0];
                self.0.push((record.bin_index, flows.delivered_packets, flows.disabled));
            }
        }
        monitor
            .run(&mut BatchReplay::new(batches.clone()), &mut Tape(&mut rows))
            .expect("run succeeds");
        rows
    };

    let sequential = delivered(1);
    assert!(
        sequential.iter().any(|(_, delivered, _)| *delivered > 0),
        "the flows query must see packets"
    );
    for workers in [2usize, 4] {
        assert_eq!(
            sequential,
            delivered(workers),
            "flow-sampling decisions diverged at {workers} workers"
        );
    }
}

/// Benign golden scenarios with their recorded batches and corpus capacity,
/// generated once and shared by every property case below.
fn benign_corpus() -> &'static [(String, Vec<Batch>, f64)] {
    use netshed_bench::corpus::{corpus_capacity, ADVERSARIAL_SCENARIOS};
    use netshed_trace::scenario::builtins;
    static CORPUS: std::sync::OnceLock<Vec<(String, Vec<Batch>, f64)>> = std::sync::OnceLock::new();
    CORPUS.get_or_init(|| {
        builtins()
            .iter()
            .filter(|scenario| !ADVERSARIAL_SCENARIOS.contains(&scenario.name()))
            .map(|scenario| {
                let batches = scenario.generate().expect("builtin is valid");
                let capacity = corpus_capacity(&batches);
                (scenario.name().to_string(), batches, capacity)
            })
            .collect()
    })
}

proptest! {
    /// The hardened predictor is a strict opt-in: on benign (non-adversarial)
    /// golden scenarios, under any strategy and either pinned worker count,
    /// `robust_mlr_fcbf` is bit-identical to plain `mlr_fcbf` — its tripwire
    /// stays silent and zero behavioral drift leaks into unattacked runs.
    #[test]
    fn robust_predictor_matches_plain_mlr_on_benign_scenarios(
        scenario_pick in 0usize..1024,
        strategy_pick in 0usize..1024,
        workers_pick in 0usize..2,
    ) {
        use netshed_bench::corpus::{all_strategies, digest_run, digest_run_with_predictor};
        let corpus = benign_corpus();
        let (name, batches, capacity) = &corpus[scenario_pick % corpus.len()];
        let strategies = all_strategies();
        let (strategy_name, strategy) = &strategies[strategy_pick % strategies.len()];
        let workers = [1usize, 4][workers_pick];
        let plain = digest_run(batches, *strategy, *capacity, workers).expect("plain run");
        let robust = digest_run_with_predictor(
            batches,
            *strategy,
            *capacity,
            workers,
            PredictorKind::RobustMlrFcbf,
        )
        .expect("robust run");
        prop_assert_eq!(
            plain,
            robust,
            "robust_mlr_fcbf drifted from mlr_fcbf on benign {} / {} at {} workers",
            name,
            strategy_name,
            workers
        );
    }
}

proptest! {
    /// Flow-to-shard routing is a pure function of the host pair: both
    /// directions of a conversation, and every flow between the same two
    /// hosts, route to the same lane — for any lane count.
    #[test]
    fn shard_routing_is_symmetric_and_port_independent(
        src_ip in 0u32..u32::MAX,
        dst_ip in 0u32..u32::MAX,
        ports in proptest::collection::vec((0u16..u16::MAX, 0u16..u16::MAX, 0u8..18), 1..20),
        lanes in 1usize..17,
    ) {
        use netshed::trace::shard_key;
        let reference = shard_key(&FiveTuple::new(src_ip, dst_ip, 1, 2, 6));
        for (src_port, dst_port, proto) in ports {
            let forward = FiveTuple::new(src_ip, dst_ip, src_port, dst_port, proto);
            let reverse = FiveTuple::new(dst_ip, src_ip, dst_port, src_port, proto);
            prop_assert_eq!(shard_key(&forward), reference, "ports/proto must not affect routing");
            prop_assert_eq!(shard_key(&reverse), reference, "routing must be direction-symmetric");
            prop_assert_eq!(
                (shard_key(&forward) % lanes as u64) as usize,
                (reference % lanes as u64) as usize
            );
        }
    }

    /// `split_shards` is an exact partition: every packet lands on the lane
    /// its shard key names, nothing is lost or duplicated, per-lane order is
    /// the original capture order, and the bin geometry survives untouched.
    #[test]
    fn split_shards_partitions_exactly_for_any_lane_count(
        hosts in proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX, 0u16..u16::MAX), 1..150),
        lanes in 1usize..9,
    ) {
        use netshed::trace::shard_key;
        let packets: Vec<Packet> = hosts
            .iter()
            .enumerate()
            .map(|(i, &(src, dst, port))| {
                Packet::header_only(i as u64 * 100, FiveTuple::new(src, dst, port, 80, 6), 200, 0)
            })
            .collect();
        let batch = Batch::new(3, 0, 100_000, packets);
        let sub_batches = batch.split_shards(lanes);
        prop_assert_eq!(sub_batches.len(), lanes);

        let mut total = 0usize;
        for (lane, sub) in sub_batches.iter().enumerate() {
            prop_assert_eq!(sub.bin_index, batch.bin_index);
            prop_assert_eq!(sub.start_ts, batch.start_ts);
            prop_assert_eq!(sub.duration_us, batch.duration_us);
            total += sub.len();
            let mut previous_ts = 0u64;
            for packet in sub.packets.iter() {
                prop_assert_eq!(
                    (shard_key(packet.tuple()) % lanes as u64) as usize,
                    lane,
                    "a packet sits on a lane its key does not name"
                );
                prop_assert!(packet.ts() >= previous_ts, "capture order must survive the split");
                previous_ts = packet.ts();
            }
        }
        prop_assert_eq!(total, batch.len(), "the split must be an exact partition");
    }
}
