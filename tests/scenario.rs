//! Scenario subsystem integration: compiled scenarios drive `Monitor::run`
//! directly, recordings replay through the binary format, and malformed
//! descriptions surface as typed errors at the facade level.

use netshed::prelude::*;
use netshed_trace::scenario::builtin;
use netshed_trace::{decode_batches, encode_batches};

fn specs() -> Vec<QuerySpec> {
    vec![QuerySpec::new(QueryKind::Counter), QuerySpec::new(QueryKind::Flows)]
}

fn demo_scenario() -> Scenario {
    Scenario::new("demo")
        .seed(11)
        .phase(Phase::new("calm", 8).profile(TraceProfile::CescaI).scale(0.06))
        .phase(
            Phase::new("attack", 8)
                .profile(TraceProfile::CescaI)
                .scale(0.06)
                .anomaly(AnomalyEvent::ddos(0x0a00_0001).over(1, 5).intensity(200)),
        )
}

#[test]
fn a_compiled_scenario_drives_a_monitor_run() {
    let scenario = demo_scenario();
    let mut source = scenario.compile().expect("valid scenario");
    let mut monitor =
        Monitor::builder().capacity(1e12).no_noise().queries(specs()).build().expect("build");
    let summary = monitor.run(&mut source, &mut NullObserver).expect("run");
    assert_eq!(summary.bins + summary.empty_bins, scenario.total_bins());
    assert!(summary.total_packets > 0);
}

#[test]
fn scenario_runs_equal_their_recorded_replays() {
    // The streaming path (monitor fed by the compiled source) and the
    // recorded path (monitor fed by a TraceReader over the encoded bytes)
    // must produce identical summaries and digests.
    let scenario = demo_scenario();
    let batches = scenario.generate().expect("valid scenario");
    let bytes = encode_batches(&batches, scenario.bin_duration_us()).expect("encode");

    let run = |source: &mut dyn PacketSource| {
        let mut monitor = Monitor::builder()
            .capacity(2e6)
            .seed(3)
            .with_workers(1)
            .queries(specs())
            .build()
            .expect("build");
        let mut digest = DigestObserver::new();
        let summary = monitor.run(&mut &mut *source, &mut digest).expect("run");
        (summary, digest.digest())
    };

    let mut live = scenario.compile().expect("valid scenario");
    let (live_summary, live_digest) = run(&mut live);
    let mut replay = TraceReader::new(&bytes[..]).expect("header").into_replay().expect("decode");
    let (replay_summary, replay_digest) = run(&mut replay);
    assert_eq!(live_summary, replay_summary);
    assert_eq!(live_digest, replay_digest);

    // Streaming straight from the reader (no materialised Vec) matches too.
    let mut streamed = TraceReader::new(&bytes[..]).expect("header");
    let (streamed_summary, streamed_digest) = run(&mut streamed);
    assert!(streamed.error().is_none(), "clean stream must not latch an error");
    assert_eq!(streamed_summary, live_summary);
    assert_eq!(streamed_digest, live_digest);
}

#[test]
fn scenario_validation_errors_convert_to_typed_netshed_errors() {
    // Zero-duration phase.
    let zero = Scenario::new("zero").phase(Phase::new("empty", 0));
    let error: NetshedError = zero.validate().expect_err("must fail").into();
    assert!(matches!(error, NetshedError::InvalidScenario(_)));
    assert!(error.to_string().contains("empty"), "names the phase: {error}");

    // Overlapping anomalies.
    let overlapping = Scenario::new("overlap").phase(
        Phase::new("p", 10)
            .anomaly(AnomalyEvent::ddos(1).over(0, 6))
            .anomaly(AnomalyEvent::flash_crowd(2, 80).over(5, 3)),
    );
    let error: NetshedError = overlapping.validate().expect_err("must fail").into();
    assert!(matches!(error, NetshedError::InvalidScenario(_)));
    assert!(error.to_string().contains("overlap"), "{error}");

    // Unknown profile name.
    let unknown = Scenario::new("typo").phase(Phase::new("p", 5).profile_named("CESCA-III"));
    let error: NetshedError = unknown.validate().expect_err("must fail").into();
    assert!(error.to_string().contains("CESCA-III"), "{error}");

    // And format errors convert too.
    let error: NetshedError = decode_batches(b"not a trace at all").expect_err("must fail").into();
    assert!(matches!(error, NetshedError::TraceFormat(_)));
    assert!(error.to_string().contains("NSTR"), "{error}");
}

#[test]
fn compile_does_not_panic_on_malformed_scenarios() {
    for broken in [
        Scenario::new("no-links"),
        Scenario::new("zero").phase(Phase::new("p", 0)),
        Scenario::new("silent-anomaly")
            .phase(Phase::new("p", 4).silent().anomaly(AnomalyEvent::ddos(1).over(0, 2))),
        Scenario::new("oob").phase(Phase::new("p", 4).anomaly(AnomalyEvent::ddos(1).over(3, 4))),
    ] {
        assert!(broken.compile().is_err(), "{} must not compile", broken.name());
    }
}

#[test]
fn builtin_scenarios_are_reachable_from_the_facade() {
    let scenario = builtin("link-flap").expect("built-in exists");
    assert_eq!(scenario.links().len(), 2, "link-flap is the multi-link builtin");
    let batches = scenario.generate().expect("valid");
    assert_eq!(batches.len() as u64, scenario.total_bins());
    // The edge link flaps over bins 6..10 and 18..22; the core link keeps
    // the merged bins non-empty throughout.
    assert!(batches.iter().all(|b| !b.is_empty()));
}

#[test]
fn multi_link_tail_keeps_remaining_hint_consistent() {
    let scenario = Scenario::new("tails")
        .seed(8)
        .link(Link::new("long").phase(Phase::new("p", 6).profile(TraceProfile::CescaI).scale(0.05)))
        .link(
            Link::new("short").phase(Phase::new("p", 2).profile(TraceProfile::Cenic).scale(0.05)),
        );
    let mut source = scenario.compile().expect("valid");
    let mut seen = 0;
    while let Some(batch) = source.next_batch() {
        assert_eq!(batch.bin_index, seen);
        seen += 1;
        assert_eq!(source.remaining_hint(), Some((6 - seen) as usize));
    }
    assert_eq!(seen, 6);
}
