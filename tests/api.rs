//! Integration tests of the streaming-first public API: builder validation,
//! dynamic query lifecycle through `QueryId` handles, and `PacketSource`
//! round-trips.

use netshed::prelude::*;

fn small_source(seed: u64, batches: usize) -> impl PacketSource {
    TraceGenerator::new(TraceConfig::default().with_seed(seed).with_mean_packets_per_batch(60.0))
        .take_batches(batches)
}

#[test]
fn builder_rejects_invalid_configs_with_typed_errors() {
    assert!(matches!(
        Monitor::builder().capacity(0.0).build(),
        Err(NetshedError::InvalidConfig(_))
    ));
    assert!(matches!(
        Monitor::builder().capacity(f64::NAN).build(),
        Err(NetshedError::InvalidConfig(_))
    ));
    assert!(matches!(
        Monitor::builder().ewma_alpha(2.0).build(),
        Err(NetshedError::InvalidConfig(_))
    ));
    assert!(matches!(
        Monitor::builder().capacity(100.0).platform_overhead(200.0).build(),
        Err(NetshedError::CapacityUnderflow { .. })
    ));
    assert!(matches!(
        Monitor::builder().query(QuerySpec::new(QueryKind::Counter).with_min_rate(-0.5)).build(),
        Err(NetshedError::InvalidConfig(_))
    ));
    // The error message names the offending field.
    let error = Monitor::builder().ewma_alpha(-1.0).build().unwrap_err();
    assert!(error.to_string().contains("ewma_alpha"), "unhelpful message: {error}");
}

#[test]
fn duplicate_kind_registration_with_distinct_labels() {
    let monitor = Monitor::builder()
        .capacity(1e12)
        .no_noise()
        .query(QuerySpec::new(QueryKind::Counter).with_label("counter-a"))
        .query(QuerySpec::new(QueryKind::Counter).with_label("counter-b"))
        .build()
        .expect("valid configuration");
    assert_eq!(monitor.query_names(), vec!["counter-a", "counter-b"]);
    let handles = monitor.query_handles();
    assert_ne!(handles[0].0, handles[1].0, "instances get distinct handles");

    // Both instances run and report under their own labels — and, seeing the
    // same unsampled traffic, report identical counts.
    let mut monitor2 = monitor;
    let mut source = small_source(11, 25);
    let mut summary_outputs: Vec<Vec<(String, QueryOutput)>> = Vec::new();
    struct Collect<'a>(&'a mut Vec<Vec<(String, QueryOutput)>>);
    impl RunObserver for Collect<'_> {
        fn on_interval(&mut self, outputs: &[(String, QueryOutput)]) {
            self.0.push(outputs.to_vec());
        }
    }
    monitor2.run(&mut source, &mut Collect(&mut summary_outputs)).expect("run");
    assert!(!summary_outputs.is_empty());
    for interval in &summary_outputs {
        assert_eq!(interval.len(), 2);
        assert_eq!(interval[0].0, "counter-a");
        assert_eq!(interval[1].0, "counter-b");
        assert_eq!(interval[0].1, interval[1].1, "same kind, same traffic, same output");
    }
}

#[test]
fn register_deregister_mid_run_matches_a_fresh_monitor() {
    // A monitor that hosts a transient second query mid-run must report the
    // same outputs for the query that stays as a monitor that never saw the
    // transient (ample capacity, no noise: the transient changes no rates).
    let batches =
        TraceGenerator::new(TraceConfig::default().with_seed(23).with_mean_packets_per_batch(80.0))
            .batches(30);

    let collect = |with_transient: bool| -> Vec<(String, QueryOutput)> {
        let mut monitor = Monitor::builder()
            .capacity(1e12)
            .no_noise()
            .seed(5)
            .query(QuerySpec::new(QueryKind::Counter))
            .build()
            .expect("valid configuration");
        let mut transient = None;
        let mut outputs = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            if with_transient && i == 8 {
                transient = Some(
                    monitor
                        .register(&QuerySpec::new(QueryKind::Flows).with_label("transient"))
                        .expect("valid spec"),
                );
            }
            if with_transient && i == 17 {
                monitor.deregister(transient.take().expect("registered")).expect("known id");
            }
            let record = monitor.process_batch(batch).expect("non-empty batch");
            if let Some(interval) = record.interval_outputs {
                outputs.extend(interval.into_iter().filter(|(name, _)| name == "counter"));
            }
        }
        outputs
            .into_iter()
            .chain(monitor.finish_interval().into_iter().filter(|(name, _)| name == "counter"))
            .collect()
    };

    let with = collect(true);
    let without = collect(false);
    assert_eq!(with.len(), without.len());
    for ((name_a, out_a), (name_b, out_b)) in with.iter().zip(&without) {
        assert_eq!(name_a, name_b);
        assert_eq!(out_a, out_b, "the transient query must not disturb the survivor");
    }
}

#[test]
fn deregistering_twice_is_an_unknown_query_error() {
    let mut monitor = Monitor::builder()
        .capacity(1e12)
        .query(QuerySpec::new(QueryKind::Counter))
        .build()
        .expect("valid configuration");
    let id = monitor.query_handles()[0].0;
    monitor.deregister(id).expect("first deregistration succeeds");
    assert_eq!(monitor.deregister(id), Err(NetshedError::UnknownQuery(id.to_string())));
}

#[test]
fn generator_and_replay_of_the_same_batches_produce_identical_summaries() {
    let config = TraceConfig::default().with_seed(77).with_mean_packets_per_batch(120.0);
    let specs = vec![QuerySpec::new(QueryKind::Counter), QuerySpec::new(QueryKind::Flows)];
    let build = || {
        Monitor::builder()
            .capacity(1e12)
            .no_noise()
            .seed(9)
            .queries(specs.clone())
            .build()
            .expect("valid configuration")
    };

    // Live: the generator streams straight into the monitor.
    let mut live_source = TraceGenerator::new(config.clone()).take_batches(40);
    let live = build().run(&mut live_source, &mut NullObserver).expect("run");

    // Replay: the identical batches recorded first, then replayed.
    let mut replay = BatchReplay::record(&mut TraceGenerator::new(config), 40);
    let replayed = build().run(&mut replay, &mut NullObserver).expect("run");

    assert_eq!(live, replayed, "streaming and replaying the same traffic must match exactly");
    assert_eq!(live.bins + live.empty_bins, 40);
}

#[test]
fn interleaved_sources_aggregate_their_traffic() {
    let mk = |seed: u64| {
        Box::new(
            TraceGenerator::new(
                TraceConfig::default().with_seed(seed).with_mean_packets_per_batch(50.0),
            )
            .take_batches(20),
        ) as Box<dyn PacketSource>
    };
    let mut merged = Interleave::new(vec![mk(1), mk(2)]);
    let mut single = mk(1);

    let mut monitor_merged = Monitor::builder()
        .capacity(1e12)
        .no_noise()
        .query(QuerySpec::new(QueryKind::Counter))
        .build()
        .expect("valid configuration");
    let merged_summary = monitor_merged.run(&mut merged, &mut NullObserver).expect("run");

    let mut monitor_single = Monitor::builder()
        .capacity(1e12)
        .no_noise()
        .query(QuerySpec::new(QueryKind::Counter))
        .build()
        .expect("valid configuration");
    let single_summary = monitor_single.run(&mut single, &mut NullObserver).expect("run");

    assert!(
        merged_summary.total_packets > single_summary.total_packets,
        "two interleaved links must carry more packets than one ({} vs {})",
        merged_summary.total_packets,
        single_summary.total_packets
    );
}

/// A user-defined `ControlPolicy`, written entirely outside the monitor
/// crate, compiles, runs, and shows up in the per-bin decisions.
#[test]
fn custom_policy_from_outside_the_monitor_crate_runs() {
    /// Sheds every query to a fixed rate whenever the predicted demand
    /// exceeds the budget.
    struct PanicButton {
        rate: f64,
        triggered: u64,
    }

    impl ControlPolicy for PanicButton {
        fn decide(&mut self, ctx: &ControlContext<'_>) -> ControlDecision {
            let demand: f64 = ctx.predictions.iter().sum();
            if demand <= ctx.available_cycles {
                return ControlDecision::full_rates(ctx.predictions.len());
            }
            self.triggered += 1;
            ControlDecision {
                rates: vec![self.rate; ctx.predictions.len()],
                budget: Some(ctx.available_cycles),
                inflation: 1.0,
                allocations: None,
                reason: DecisionReason::Custom,
            }
        }

        fn name(&self) -> String {
            format!("panic_button_{:.2}", self.rate)
        }
    }

    let batches = TraceGenerator::new(
        TraceConfig::default().with_seed(17).with_mean_packets_per_batch(300.0).with_payloads(true),
    )
    .batches(60);
    let specs = vec![
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::PatternSearch),
    ];
    let demand = netshed::monitor::reference::measure_total_demand(&specs, &batches[..20])
        .expect("valid query specs");
    let mut monitor = Monitor::builder()
        .capacity(demand / 2.0)
        .seed(5)
        .no_noise()
        .with_policy(PanicButton { rate: 0.25, triggered: 0 })
        .queries(specs)
        .build()
        .expect("valid configuration");
    assert_eq!(monitor.policy_name(), "panic_button_0.25");

    struct DecisionStats {
        custom_bins: u64,
        quarter_rate_bins: u64,
    }
    impl RunObserver for DecisionStats {
        fn on_decision(&mut self, _bin_index: u64, decision: &ControlDecision) {
            if decision.reason == DecisionReason::Custom {
                self.custom_bins += 1;
                if decision.rates.iter().all(|rate| (*rate - 0.25).abs() < 1e-12) {
                    self.quarter_rate_bins += 1;
                }
            }
        }
    }
    let mut stats = DecisionStats { custom_bins: 0, quarter_rate_bins: 0 };
    let summary = monitor.run(&mut BatchReplay::new(batches), &mut stats).expect("run");
    assert!(summary.bins > 0);
    assert!(
        stats.custom_bins > summary.bins / 2,
        "a 2x-overloaded system should trip the panic button most bins ({} of {})",
        stats.custom_bins,
        summary.bins
    );
    assert_eq!(stats.custom_bins, stats.quarter_rate_bins, "every custom decision sheds to 0.25");
}

#[test]
fn run_flushes_the_final_interval_exactly_once() {
    struct CountIntervals(usize);
    impl RunObserver for CountIntervals {
        fn on_interval(&mut self, _outputs: &[(String, QueryOutput)]) {
            self.0 += 1;
        }
    }
    let mut monitor = Monitor::builder()
        .capacity(1e12)
        .no_noise()
        .query(QuerySpec::new(QueryKind::Counter))
        .build()
        .expect("valid configuration");
    let mut counter = CountIntervals(0);
    // 25 batches of 100 ms = 2.5 s: two mid-run interval closes + final flush.
    monitor.run(&mut small_source(3, 25), &mut counter).expect("run");
    assert_eq!(counter.0, 3);
    // A second run starts from a clean interval state.
    let mut counter2 = CountIntervals(0);
    monitor.run(&mut small_source(4, 5), &mut counter2).expect("run");
    assert_eq!(counter2.0, 1);
}
