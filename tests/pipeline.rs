//! Cross-crate integration tests: the full monitoring pipeline, end to end,
//! driven through the streaming API (builder + `run` + observers).

use netshed::prelude::*;
use std::collections::BTreeMap;

fn trace(profile: TraceProfile, seed: u64, batches: usize) -> Vec<Batch> {
    TraceGenerator::new(profile.config(seed, 0.5)).batches(batches)
}

fn chapter4_specs() -> Vec<QuerySpec> {
    QueryKind::CHAPTER4_SET.iter().map(|kind| QuerySpec::new(*kind)).collect()
}

/// Runs a monitor + reference pair and returns the mean accuracy per query.
fn run_accuracy(
    strategy: Strategy,
    capacity: f64,
    batches: &[Batch],
    specs: &[QuerySpec],
    seed: u64,
) -> BTreeMap<String, f64> {
    let mut monitor = Monitor::builder()
        .capacity(capacity)
        .strategy(strategy)
        .seed(seed)
        .queries(specs.to_vec())
        .build()
        .expect("valid configuration");
    let mut source = BatchReplay::new(batches.to_vec());
    let mut accuracy = AccuracyTracker::new(specs, monitor.config().measurement_interval_us);
    monitor.run(&mut source, &mut accuracy).expect("run");
    accuracy.mean_accuracy()
}

#[test]
fn predictive_shedding_beats_no_shedding_under_overload() {
    let batches = trace(TraceProfile::CescaII, 5, 200);
    let specs = chapter4_specs();
    let demand = netshed::monitor::reference::measure_total_demand(&specs, &batches[..40])
        .expect("valid query specs");
    let capacity = demand / 2.0;

    let predictive = run_accuracy(
        Strategy::Predictive(AllocationPolicy::MmfsPkt),
        capacity,
        &batches,
        &specs,
        1,
    );
    let original = run_accuracy(Strategy::NoShedding, capacity, &batches, &specs, 1);

    // Compare the queries whose unsampled output can be estimated from
    // sampled streams (the paper's Table 4.1 set). `high-watermark` is left
    // out of the strict bound because the scaled-down synthetic batches make
    // its peak estimate noisier than on the paper's full-rate traces.
    for query in ["counter", "application", "flows"] {
        let with = predictive.get(query).copied().unwrap_or(0.0);
        let without = original.get(query).copied().unwrap_or(0.0);
        assert!(
            with > without,
            "{query}: predictive accuracy {with:.3} should beat no-shedding {without:.3}"
        );
        assert!(with > 0.85, "{query}: predictive accuracy {with:.3} should stay above 0.85");
    }
}

#[test]
fn monitor_runs_are_reproducible_for_a_fixed_seed() {
    let batches = trace(TraceProfile::CescaI, 9, 60);
    let specs = vec![QuerySpec::new(QueryKind::Flows), QuerySpec::new(QueryKind::Counter)];
    let demand = netshed::monitor::reference::measure_total_demand(&specs, &batches[..20])
        .expect("valid query specs");

    let run = |seed: u64| -> RunSummary {
        let mut monitor = Monitor::builder()
            .capacity(demand / 2.0)
            .strategy(Strategy::Predictive(AllocationPolicy::EqualRates))
            .seed(seed)
            .queries(specs.clone())
            .build()
            .expect("valid configuration");
        monitor.run(&mut BatchReplay::new(batches.clone()), &mut NullObserver).expect("run")
    };
    assert_eq!(run(3), run(3), "same seed must reproduce the same run");
    assert_ne!(run(3), run(4), "different seeds should differ");
}

#[test]
fn ddos_anomaly_is_handled_without_uncontrolled_drops() {
    let mut generator = TraceGenerator::new(TraceProfile::CescaI.config(13, 0.5));
    generator.add_anomaly(
        Anomaly::new(AnomalyKind::SynFlood { target: 0x0a00_0001, port: 80 }, 60, 120, 800)
            .with_duty_cycle(20),
    );
    let batches = generator.batches(180);
    let specs = vec![
        QuerySpec::new(QueryKind::Flows),
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::TopK),
    ];
    let demand = netshed::monitor::reference::measure_total_demand(&specs, &batches[..50])
        .expect("valid query specs");
    let mut monitor = Monitor::builder()
        .capacity(demand * 1.2)
        .strategy(Strategy::Predictive(AllocationPolicy::MmfsPkt))
        .queries(specs)
        .build()
        .expect("valid configuration");
    let summary = monitor.run(&mut BatchReplay::new(batches), &mut NullObserver).expect("run");
    assert_eq!(
        summary.total_uncontrolled_drops, 0,
        "the predictive system must absorb the attack without uncontrolled drops"
    );
}

#[test]
fn counter_estimates_stay_close_under_sampling() {
    // Full-payload profile so that the expensive byte-dependent queries (and
    // not the monitoring overhead) dominate the demand being halved.
    let batches = trace(TraceProfile::CescaII, 21, 150);
    let specs = vec![
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::PatternSearch),
        QuerySpec::new(QueryKind::Trace),
    ];
    let demand = netshed::monitor::reference::measure_total_demand(&specs, &batches[..30])
        .expect("valid query specs");
    let accuracy = run_accuracy(
        Strategy::Predictive(AllocationPolicy::MmfsPkt),
        demand / 2.0,
        &batches,
        &specs,
        2,
    );
    let counter = accuracy.get("counter").copied().unwrap_or(0.0);
    assert!(counter > 0.93, "counter accuracy {counter:.3} should be within a few percent");
}

#[test]
fn selfish_custom_query_is_policed_and_does_not_hurt_others() {
    let batches = trace(TraceProfile::UpcI, 31, 200);
    let honest_specs = vec![
        QuerySpec::new(QueryKind::P2pDetector).with_custom(CustomBehavior::Honest),
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
    ];
    let selfish_specs = vec![
        QuerySpec::new(QueryKind::P2pDetector).with_custom(CustomBehavior::Selfish),
        QuerySpec::new(QueryKind::Counter),
        QuerySpec::new(QueryKind::Flows),
    ];
    let demand = netshed::monitor::reference::measure_total_demand(&honest_specs, &batches[..40])
        .expect("valid query specs");
    let capacity = demand * 0.5;

    let honest = run_accuracy(
        Strategy::Predictive(AllocationPolicy::MmfsPkt),
        capacity,
        &batches,
        &honest_specs,
        3,
    );
    let selfish = run_accuracy(
        Strategy::Predictive(AllocationPolicy::MmfsPkt),
        capacity,
        &batches,
        &selfish_specs,
        3,
    );

    // The selfish detector must not drag down the accuracy of the other
    // queries by more than a few percent compared to the honest setup.
    for query in ["counter", "flows"] {
        let honest_acc = honest.get(query).copied().unwrap_or(0.0);
        let selfish_acc = selfish.get(query).copied().unwrap_or(0.0);
        assert!(
            selfish_acc > honest_acc - 0.1,
            "{query}: selfish neighbour reduced accuracy too much ({selfish_acc:.3} vs {honest_acc:.3})"
        );
    }
}

#[test]
fn interval_outputs_line_up_between_monitor_and_reference() {
    let batches = trace(TraceProfile::CescaI, 41, 45);
    let specs = vec![QuerySpec::new(QueryKind::Counter)];
    let mut monitor = Monitor::builder()
        .capacity(1e12)
        .no_noise()
        .queries(specs.clone())
        .build()
        .expect("valid configuration");
    let mut reference = ReferenceRunner::new(&specs, 1_000_000);
    let mut compared = 0;
    for batch in &batches {
        let record = monitor.process_batch(batch).expect("non-empty batch");
        let truths = reference.process_batch(batch);
        assert_eq!(record.interval_outputs.is_some(), truths.is_some());
        if let (Some(outputs), Some(truths)) = (record.interval_outputs, truths) {
            // With effectively infinite capacity nothing is sampled, so the
            // monitor's counter output must match the reference exactly.
            match (&outputs[0].1, &truths[0].1) {
                (
                    QueryOutput::Counter { packets: a, bytes: b },
                    QueryOutput::Counter { packets: c, bytes: d },
                ) => {
                    assert_eq!(a, c);
                    assert_eq!(b, d);
                }
                other => panic!("unexpected outputs {other:?}"),
            }
            compared += 1;
        }
    }
    assert!(compared >= 3, "expected several closed intervals, got {compared}");
}
