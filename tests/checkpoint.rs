//! Checkpoint/restore conformance: every golden scenario, run under the
//! service-plane daemon to its midpoint, checkpointed to `.nsck` bytes and
//! restored into a *fresh* daemon that finishes the run, must produce
//! exactly the digests pinned in `corpus/GOLDEN.digests` — at 1 and 4
//! workers, for all seven strategies.
//!
//! The manifest rows were pinned by uninterrupted `Monitor::run`
//! executions, so matching them proves three things at once: the daemon's
//! tick loop is observationally identical to `Monitor::run`, the `.nsck`
//! snapshot captures every bit of state that feeds the output tape, and
//! the worker count stays a pure wall-clock knob across a
//! checkpoint/restore boundary.
//!
//! The CI checkpoint-restore job repeats this cross-*process* (checkpoint
//! in one `scenarios` invocation, resume in another) under
//! `NETSHED_THREADS=1` and `=4`; this file enforces the same criterion
//! in-process so a regression fails `cargo test` before CI.

use netshed_bench::corpus::{
    all_strategies, checkpoint_run, corpus_capacity, diff_digests, parse_manifest, resume_run,
    GoldenEntry, MANIFEST_NAME,
};
use netshed_trace::scenario::builtins;
use std::path::PathBuf;

fn manifest() -> Vec<GoldenEntry> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus").join(MANIFEST_NAME);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse_manifest(&text).expect("committed manifest parses")
}

/// The acceptance criterion: midpoint checkpoint → restore in a fresh
/// daemon → finish lands on the pinned digest for every (scenario,
/// strategy) pair at 1 and 4 workers.
#[test]
fn midpoint_restore_matches_the_golden_manifest_at_both_worker_counts() {
    let pinned = manifest();
    let mut drift: Vec<String> = Vec::new();
    for scenario in builtins() {
        let batches = scenario.generate().expect("builtins are valid");
        let capacity = corpus_capacity(&batches);
        let non_empty = batches.iter().filter(|b| !b.is_empty()).count() as u64;
        let at = (non_empty / 2).max(1);
        assert!(at < non_empty, "{}: midpoint must land mid-scenario", scenario.name());
        for (name, strategy) in all_strategies() {
            let entry = pinned
                .iter()
                .find(|e| e.scenario == scenario.name() && e.strategy == name)
                .unwrap_or_else(|| {
                    panic!("{} / {name}: missing from the golden manifest", scenario.name())
                });
            for workers in [1usize, 4] {
                let snapshot = checkpoint_run(&batches, strategy, capacity, workers, at)
                    .unwrap_or_else(|e| {
                        panic!("{} / {name} @ {workers}w: checkpoint failed: {e}", scenario.name())
                    });
                let resumed = resume_run(&snapshot, &batches, strategy, capacity, workers)
                    .unwrap_or_else(|e| {
                        panic!("{} / {name} @ {workers}w: resume failed: {e}", scenario.name())
                    });
                for line in diff_digests(scenario.name(), &name, entry.digest, resumed) {
                    drift.push(format!("[{workers} worker(s)] {line}"));
                }
            }
        }
    }
    assert!(
        drift.is_empty(),
        "checkpoint/restore drifted from the golden manifest:\n  {}",
        drift.join("\n  ")
    );
}

/// The snapshot is worker-portable: a checkpoint taken at 1 worker resumes
/// at 4 (and vice versa) to the same pinned digest — the `.nsck` container
/// deliberately stores no worker count.
#[test]
fn snapshots_are_portable_across_worker_counts() {
    let pinned = manifest();
    let scenario = builtins().into_iter().next().expect("builtin scenarios");
    let batches = scenario.generate().expect("builtins are valid");
    let capacity = corpus_capacity(&batches);
    let non_empty = batches.iter().filter(|b| !b.is_empty()).count() as u64;
    let at = (non_empty / 2).max(1);
    let (name, strategy) = all_strategies().into_iter().last().expect("seven strategies");
    let entry = pinned
        .iter()
        .find(|e| e.scenario == scenario.name() && e.strategy == name)
        .expect("pinned row");
    for (checkpoint_workers, resume_workers) in [(1usize, 4usize), (4, 1)] {
        let snapshot = checkpoint_run(&batches, strategy, capacity, checkpoint_workers, at)
            .expect("checkpoint");
        let resumed =
            resume_run(&snapshot, &batches, strategy, capacity, resume_workers).expect("resume");
        let drift = diff_digests(scenario.name(), &name, entry.digest, resumed);
        assert!(
            drift.is_empty(),
            "checkpoint at {checkpoint_workers} worker(s) + resume at {resume_workers} drifted:\n  {}",
            drift.join("\n  ")
        );
    }
}

/// Early and late cut points (not just the midpoint) land on the pinned
/// digest — the snapshot is correct wherever the boundary falls.
#[test]
fn every_cut_point_resumes_to_the_pinned_digest() {
    let pinned = manifest();
    let scenario = builtins().into_iter().next().expect("builtin scenarios");
    let batches = scenario.generate().expect("builtins are valid");
    let capacity = corpus_capacity(&batches);
    let non_empty = batches.iter().filter(|b| !b.is_empty()).count() as u64;
    let (name, strategy) = all_strategies().into_iter().next().expect("seven strategies");
    let entry = pinned
        .iter()
        .find(|e| e.scenario == scenario.name() && e.strategy == name)
        .expect("pinned row");
    for at in 1..non_empty {
        let snapshot = checkpoint_run(&batches, strategy, capacity, 1, at).expect("checkpoint");
        let resumed = resume_run(&snapshot, &batches, strategy, capacity, 1).expect("resume");
        let drift = diff_digests(scenario.name(), &name, entry.digest, resumed);
        assert!(
            drift.is_empty(),
            "cut at bin {at} of {non_empty} drifted:\n  {}",
            drift.join("\n  ")
        );
    }
}
